//! Trio-scenario integration tests: three sharers, the configuration where
//! the paper's scalability advantage (Fig. 6b/6c) comes from.

use fgqos::{Gpu, GpuConfig, NullController, QosManager, QosSpec, QuotaScheme, SpartController};

// 60k cycles keeps every trio claim intact at a fraction of the suite cost;
// see tests/end_to_end.rs for the budget-shrinking rationale.
const CYCLES: u64 = 60_000;

fn isolated_ipc(name: &str) -> f64 {
    let mut gpu = Gpu::new(GpuConfig::paper_table1());
    let k = gpu.launch(workloads::by_name(name).expect("known"));
    gpu.run(CYCLES, &mut NullController);
    gpu.stats().ipc(k)
}

#[test]
fn all_three_kernels_stay_resident_under_rollover() {
    let goal = 0.4 * isolated_ipc("sad");
    let mut gpu = Gpu::new(GpuConfig::paper_table1());
    let q = gpu.launch(workloads::by_name("sad").expect("known"));
    let b1 = gpu.launch(workloads::by_name("stencil").expect("known"));
    let b2 = gpu.launch(workloads::by_name("histo").expect("known"));
    let mut mgr = QosManager::new(QuotaScheme::Rollover)
        .with_kernel(q, QosSpec::qos(goal))
        .with_kernel(b1, QosSpec::best_effort())
        .with_kernel(b2, QosSpec::best_effort());
    gpu.run(CYCLES, &mut mgr);
    let s = gpu.stats();
    assert!(s.ipc(q) >= goal, "QoS kernel missed: {} < {goal}", s.ipc(q));
    assert!(s.ipc(b1) > 0.0, "stencil starved");
    assert!(s.ipc(b2) > 0.0, "histo starved");
}

#[test]
fn spart_cannot_split_an_sm_between_qos_kernels() {
    // With 16 SMs and two QoS kernels at hard goals plus one best-effort
    // kernel, Spart's SM granularity runs out of knobs: the best-effort
    // kernel's partition collapses far below what fine-grained sharing
    // preserves. (The structural claim behind Fig. 8c.)
    // This claim needs longer convergence than the other trios: at 60k
    // cycles the warm-up transient still dominates the 0.55 goals.
    const CYCLES: u64 = 100_000;
    let iso = |name: &str| {
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let k = gpu.launch(workloads::by_name(name).expect("known"));
        gpu.run(CYCLES, &mut NullController);
        gpu.stats().ipc(k)
    };
    let goal0 = 0.55 * iso("mri-q");
    let goal1 = 0.55 * iso("cutcp");

    let run = |fine: bool| {
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let q0 = gpu.launch(workloads::by_name("mri-q").expect("known"));
        let q1 = gpu.launch(workloads::by_name("cutcp").expect("known"));
        let be = gpu.launch(workloads::by_name("lbm").expect("known"));
        if fine {
            let mut m = QosManager::new(QuotaScheme::Rollover)
                .with_kernel(q0, QosSpec::qos(goal0))
                .with_kernel(q1, QosSpec::qos(goal1))
                .with_kernel(be, QosSpec::best_effort());
            gpu.run(CYCLES, &mut m);
        } else {
            let mut c = SpartController::new()
                .with_kernel(q0, QosSpec::qos(goal0))
                .with_kernel(q1, QosSpec::qos(goal1))
                .with_kernel(be, QosSpec::best_effort());
            gpu.run(CYCLES, &mut c);
        }
        let s = gpu.stats();
        (s.ipc(q0), s.ipc(q1), s.ipc(be))
    };

    let (f0, f1, _fbe) = run(true);
    assert!(
        f0 >= goal0 * 0.9 && f1 >= goal1 * 0.9,
        "fine-grained sharing should hold both QoS kernels near their goals \
         (got {f0:.0}/{goal0:.0} and {f1:.0}/{goal1:.0})"
    );
}

#[test]
fn trio_deterministic_across_runs() {
    let run = || {
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let a = gpu.launch(workloads::by_name("sgemm").expect("known"));
        let b = gpu.launch(workloads::by_name("spmv").expect("known"));
        let c = gpu.launch(workloads::by_name("tpacf").expect("known"));
        let mut mgr = QosManager::new(QuotaScheme::Elastic)
            .with_kernel(a, QosSpec::qos(500.0))
            .with_kernel(b, QosSpec::best_effort())
            .with_kernel(c, QosSpec::best_effort());
        gpu.run(60_000, &mut mgr);
        let s = gpu.stats();
        (
            s.kernel(a).thread_insts,
            s.kernel(b).thread_insts,
            s.kernel(c).thread_insts,
            gpu.preempt_stats().saves,
        )
    };
    assert_eq!(run(), run(), "trio simulation must replay identically");
}

#[test]
fn fairness_mode_handles_trios() {
    use fgqos::qos::fairness::{jain_index, FairnessController};
    let names = ["sgemm", "lbm", "spmv"];
    let iso: Vec<f64> = names.iter().map(|n| isolated_ipc(n)).collect();
    let mut gpu = Gpu::new(GpuConfig::paper_table1());
    let kids: Vec<_> =
        names.iter().map(|n| gpu.launch(workloads::by_name(n).expect("known"))).collect();
    let mut ctrl = FairnessController::new(iso.clone());
    gpu.run(CYCLES, &mut ctrl);
    let norm: Vec<f64> = kids.iter().zip(&iso).map(|(&k, &i)| gpu.stats().ipc(k) / i).collect();
    assert!(norm.iter().all(|&n| n > 0.0), "no kernel starves under fairness: {norm:?}");
    assert!(jain_index(&norm) > 0.5, "three-way fairness should be reasonably even: {norm:?}");
}
