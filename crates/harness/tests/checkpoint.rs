//! Acceptance tests for the crash-resumable checkpoint subsystem.
//!
//! Covers the robustness contract end to end:
//! * a sweep SIGKILLed mid-flight and resumed with `repro resume` prints a
//!   final report byte-identical to an uninterrupted run's;
//! * a corrupted (bit-flipped) newest checkpoint is detected by its
//!   checksum, skipped with a warning, and the previous generation loads;
//! * resume refuses checkpoints whose regenerated plan no longer matches;
//! * a watchdog-tripped case persists a failure snapshot that loads and
//!   pretty-prints alongside its health report.

use std::path::PathBuf;
use std::process::{Command, Stdio};
use std::time::{Duration, Instant};

use harness::checkpoint::{
    load_failure, plan_fingerprint, render_failure_snapshot, resume_sweep, run_sweep_checkpointed,
    sweep_specs, CheckpointDir, CheckpointError, SweepCheckpoint,
};
use harness::error::CaseError;
use harness::scale::RunScale;

fn tmp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("fgqos-checkpoint-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// A fast checkpoint cadence: with the smoke sweep's 2 000-cycle epochs the
/// chunk floor is two watchdog windows = 8 000 cycles, so a 20 000-cycle
/// `Bench` case saves two mid-case checkpoints.
const EVERY: u64 = 1;

// ----------------------------------------------------------------------
// Corruption drill (checksums + generation fallback)
// ----------------------------------------------------------------------

#[test]
fn corrupted_newest_generation_falls_back_to_previous() {
    let dir = CheckpointDir::create(tmp_dir("corrupt")).expect("create");
    let specs = sweep_specs("smoke", RunScale::Bench).expect("known sweep");
    let ckpt = |n: usize| SweepCheckpoint {
        sweep: "smoke".to_string(),
        scale: RunScale::Bench,
        plan_fingerprint: plan_fingerprint(&specs),
        checkpoint_every: EVERY,
        completed: (0..n)
            .map(|i| Err(CaseError::Panicked { payload: format!("case {i}"), attempts: 2 }))
            .collect(),
        in_progress: None,
    };
    dir.save(&ckpt(1)).expect("older generation");
    let newest = dir.save(&ckpt(2)).expect("newest generation");

    // Flip one byte in the middle of the newest generation's payload.
    let mut bytes = std::fs::read(&newest).expect("read newest");
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    std::fs::write(&newest, &bytes).expect("write corruption");

    let (loaded, warnings) = dir.load_latest().expect("listing works");
    let loaded = loaded.expect("previous generation still loads");
    assert_eq!(loaded.completed.len(), 1, "fallback is the older checkpoint");
    assert_eq!(warnings.len(), 1, "exactly one corrupt file skipped: {warnings:?}");
    assert!(
        warnings[0].contains("corrupt") && warnings[0].contains("falling back"),
        "warning names the degradation: {}",
        warnings[0]
    );

    // With every generation corrupted, nothing loads — but the failure is
    // warnings, not an abort.
    for (_, path) in dir.generations().expect("list") {
        let mut bytes = std::fs::read(&path).expect("read");
        // A different byte from the first flip, so the already-corrupt
        // newest generation doesn't get un-flipped back to validity.
        let pos = bytes.len() / 3;
        bytes[pos] ^= 0x02;
        std::fs::write(&path, &bytes).expect("write");
    }
    let (none, warnings) = dir.load_latest().expect("listing works");
    assert!(none.is_none());
    assert_eq!(warnings.len(), 2);
    let _ = std::fs::remove_dir_all(dir.path());
}

// ----------------------------------------------------------------------
// Resume semantics (journal prefix, plan fingerprint)
// ----------------------------------------------------------------------

#[test]
fn resume_from_journal_prefix_reports_identically() {
    let full_dir = CheckpointDir::create(tmp_dir("full")).expect("create");
    let full =
        run_sweep_checkpointed("smoke", RunScale::Bench, &full_dir, EVERY).expect("sweep runs");
    assert_eq!(full.outcomes.len(), 4);
    assert!(full.outcomes.iter().all(Result::is_ok), "smoke sweep is healthy");
    assert!(full.warnings.is_empty(), "{:?}", full.warnings);

    // Pretend the process died after two completed cases (between cases, so
    // no in-progress machine state) and resume from that journal.
    let resumed_dir = CheckpointDir::create(tmp_dir("prefix")).expect("create");
    let specs = sweep_specs("smoke", RunScale::Bench).expect("known sweep");
    resumed_dir
        .save(&SweepCheckpoint {
            sweep: "smoke".to_string(),
            scale: RunScale::Bench,
            plan_fingerprint: plan_fingerprint(&specs),
            checkpoint_every: EVERY,
            completed: full.outcomes[..2].to_vec(),
            in_progress: None,
        })
        .expect("save prefix");
    let resumed = resume_sweep(&resumed_dir, None).expect("resume runs");
    assert_eq!(
        resumed.report(),
        full.report(),
        "a resumed sweep's report equals the uninterrupted one's"
    );
    let _ = std::fs::remove_dir_all(full_dir.path());
    let _ = std::fs::remove_dir_all(resumed_dir.path());
}

#[test]
fn resume_refuses_a_changed_plan() {
    let dir = CheckpointDir::create(tmp_dir("mismatch")).expect("create");
    let specs = sweep_specs("smoke", RunScale::Bench).expect("known sweep");
    dir.save(&SweepCheckpoint {
        sweep: "smoke".to_string(),
        scale: RunScale::Bench,
        plan_fingerprint: plan_fingerprint(&specs) ^ 1,
        checkpoint_every: EVERY,
        completed: Vec::new(),
        in_progress: None,
    })
    .expect("save");
    let err = resume_sweep(&dir, None).expect_err("fingerprint mismatch");
    assert!(matches!(err, CheckpointError::Mismatch(_)), "{err}");
    assert!(err.to_string().contains("fingerprint"), "{err}");
    let _ = std::fs::remove_dir_all(dir.path());
}

#[test]
fn resume_of_empty_dir_is_a_corrupt_error() {
    let dir = CheckpointDir::create(tmp_dir("void")).expect("create");
    let err = resume_sweep(&dir, None).expect_err("nothing to resume");
    assert!(matches!(err, CheckpointError::Corrupt(_)), "{err}");
    let _ = std::fs::remove_dir_all(dir.path());
}

// ----------------------------------------------------------------------
// Failure snapshots (watchdog abort → loadable machine state)
// ----------------------------------------------------------------------

#[test]
fn watchdog_abort_persists_a_loadable_failure_snapshot() {
    let dir = CheckpointDir::create(tmp_dir("faulty")).expect("create");
    let outcome = run_sweep_checkpointed("smoke-faulty", RunScale::Bench, &dir, EVERY)
        .expect("sweep survives the faulty case");
    assert_eq!(outcome.outcomes.len(), 4);
    assert!(
        matches!(&outcome.outcomes[1], Err(CaseError::Sim(gpu_sim::SimError::Watchdog(_)))),
        "the injected livelock must trip the watchdog: {:?}",
        outcome.outcomes[1]
    );
    assert!(outcome.outcomes.iter().filter(|o| o.is_ok()).count() == 3);

    let snap_path = dir.path().join("failure-case-0001.snap");
    let snap = load_failure(&snap_path).expect("failure snapshot loads");
    assert_eq!(snap.case_index, 1);
    assert_eq!(snap.error.kind(), "watchdog");

    let rendered = render_failure_snapshot(&snap);
    assert!(rendered.contains("case 1"), "{rendered}");
    assert!(rendered.contains("watchdog"), "{rendered}");
    assert!(rendered.contains("health report"), "{rendered}");
    assert!(rendered.contains("restored machine at cycle"), "{rendered}");
    assert!(
        rendered.contains("dropped to ring overflow"),
        "flight-recorder drop accounting missing:\n{rendered}"
    );

    // The journal survives the failed case, so a resume completes the
    // remaining cases and reports the same failure digest.
    let resumed = resume_sweep(&dir, None).expect("resume");
    assert_eq!(resumed.report(), outcome.report());
    let _ = std::fs::remove_dir_all(dir.path());
}

// ----------------------------------------------------------------------
// Kill-and-resume (the acceptance scenario, via the real binary)
// ----------------------------------------------------------------------

fn repro(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_repro")).args(args).output().expect("repro spawns")
}

#[test]
fn sigkilled_sweep_resumes_to_an_identical_report() {
    let baseline_dir = tmp_dir("kill-baseline");
    let killed_dir = tmp_dir("kill-victim");
    let baseline_path = baseline_dir.to_str().expect("utf8 path").to_string();
    let killed_path = killed_dir.to_str().expect("utf8 path").to_string();

    // The uninterrupted reference run.
    let baseline = repro(&[
        "run",
        "smoke",
        "--scale",
        "bench",
        "--checkpoint-dir",
        &baseline_path,
        "--checkpoint-every",
        "1",
    ]);
    assert!(baseline.status.success(), "baseline run fails: {baseline:?}");
    assert!(!baseline.stdout.is_empty(), "report goes to stdout");

    // The victim: killed (SIGKILL — no chance to flush or clean up) as soon
    // as a mid-case checkpoint exists.
    let mut victim = Command::new(env!("CARGO_BIN_EXE_repro"))
        .args([
            "run",
            "smoke",
            "--scale",
            "bench",
            "--checkpoint-dir",
            &killed_path,
            "--checkpoint-every",
            "1",
        ])
        .stdout(Stdio::null())
        .stderr(Stdio::null())
        .spawn()
        .expect("victim spawns");
    let dir = CheckpointDir::create(&killed_dir).expect("open victim dir");
    let deadline = Instant::now() + Duration::from_secs(120);
    let mut saw_mid_case = false;
    loop {
        if let (Some(ckpt), _) = dir.load_latest().expect("poll") {
            if ckpt.in_progress.is_some() {
                saw_mid_case = true;
                break;
            }
        }
        if victim.try_wait().expect("try_wait").is_some() {
            // The sweep outran the poll loop; resume below still must
            // reproduce the report from the final checkpoint.
            break;
        }
        assert!(Instant::now() < deadline, "no mid-case checkpoint appeared in time");
        std::thread::sleep(Duration::from_millis(10));
    }
    victim.kill().expect("SIGKILL");
    let _ = victim.wait();

    // Resume from whatever the kill left behind; the cadence is read from
    // the checkpoint itself, so no flags are needed.
    let resumed = repro(&["resume", &killed_path]);
    assert!(resumed.status.success(), "resume fails: {resumed:?}");
    assert_eq!(
        String::from_utf8_lossy(&resumed.stdout),
        String::from_utf8_lossy(&baseline.stdout),
        "resumed report must be byte-identical to the uninterrupted one \
         (saw_mid_case={saw_mid_case})"
    );
    assert!(
        saw_mid_case,
        "the victim finished before any mid-case checkpoint; \
         lower the cadence so the kill lands mid-case"
    );
    let _ = std::fs::remove_dir_all(&baseline_dir);
    let _ = std::fs::remove_dir_all(&killed_dir);
}
