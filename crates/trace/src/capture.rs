//! Capturing traces from the gpu-sim observe layer.
//!
//! Capture runs a kernel alone on a simulated machine with the flight
//! recorder on and rings sized for lossless recording, then pairs the
//! recorded TB dispatch/drain events into [`TbRecord`]s via
//! [`Gpu::tb_lifecycles`]. The synthetic Parboil models bootstrap the
//! committed corpus this way with zero CUDA dependency; any
//! [`KernelDesc`], however obtained, captures the same way.

use std::fmt;

use gpu_sim::{Gpu, GpuConfig, KernelDesc, NullController, TbLogError, TraceLevel};

use crate::format::{KernelTrace, TbRecord, TbShape, TraceMeta};

/// Default simulated cycles a capture run executes. Long enough for every
/// Parboil model to complete at least a handful of TBs on
/// [`GpuConfig::tiny`] (`spmv` is the slowest starter, needing ~40k cycles
/// for its first drains); short enough to keep capture (and the
/// differential tests that re-capture) cheap.
pub const DEFAULT_CAPTURE_CYCLES: u64 = 40_000;

/// Flight-recorder ring capacity used during capture. Sized so a capture
/// run can never wrap a ring (which [`Gpu::tb_lifecycles`] would reject):
/// a TB occupies an SM for many cycles, so even a degenerate kernel cannot
/// generate this many dispatch/drain pairs per SM in a bounded run.
pub const CAPTURE_RING_CAPACITY: u32 = 1 << 16;

/// The provenance string capture writes into [`TraceMeta::source`].
pub const CAPTURE_SOURCE: &str = "gpu-sim/observe-capture";

/// Why a capture run produced no usable trace.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CaptureError {
    /// The flight recorder lost events (see [`TbLogError`]).
    Log(TbLogError),
    /// No TB completed inside the capture window — the window is too short
    /// for this kernel on this configuration.
    NoCompletedTbs,
}

impl fmt::Display for CaptureError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CaptureError::Log(e) => write!(f, "capture recording unusable: {e}"),
            CaptureError::NoCompletedTbs => {
                write!(f, "no TB completed inside the capture window")
            }
        }
    }
}

impl std::error::Error for CaptureError {}

/// Captures a trace of `desc` by running it alone for `cycles` simulated
/// cycles on a machine configured like `cfg` (with the flight recorder
/// forced on and rings sized for lossless capture).
///
/// The returned trace embeds everything replay needs:
/// [`KernelTrace::kernel`] rebuilds a description equal to `desc`, so a
/// replayed run on the same configuration is bit-identical to the
/// original.
///
/// # Errors
///
/// [`CaptureError::Log`] if the recording cannot be trusted and
/// [`CaptureError::NoCompletedTbs`] if the window was too short.
pub fn capture(
    desc: &KernelDesc,
    cfg: &GpuConfig,
    cycles: u64,
) -> Result<KernelTrace, CaptureError> {
    let mut cfg = cfg.clone();
    cfg.trace.level = TraceLevel::Events;
    cfg.trace.ring_capacity = CAPTURE_RING_CAPACITY;
    let mut gpu = Gpu::new(cfg);
    let k = gpu.launch(desc.clone());
    gpu.run(cycles, &mut NullController);
    let lifecycles = gpu.tb_lifecycles(k).map_err(CaptureError::Log)?;
    if lifecycles.is_empty() {
        return Err(CaptureError::NoCompletedTbs);
    }
    Ok(KernelTrace {
        meta: TraceMeta {
            name: desc.name().to_string(),
            source: CAPTURE_SOURCE.to_string(),
            seed: desc.seed(),
            capture_cycles: cycles,
            config_fingerprint: gpu.config_fingerprint(),
        },
        shape: TbShape {
            threads_per_tb: desc.threads_per_tb(),
            regs_per_thread: desc.regs_per_thread(),
            smem_per_tb: desc.smem_per_tb(),
            grid_tbs: desc.grid_tbs(),
            iterations: desc.iterations(),
            memory_intensive: desc.memory_intensive(),
        },
        warp_ops: desc.body().to_vec(),
        tbs: lifecycles
            .into_iter()
            .map(|l| TbRecord {
                tb: l.tb,
                sm: l.sm,
                dispatch_cycle: l.dispatch_cycle,
                drain_cycle: l.drain_cycle,
                resumed: l.resumed,
            })
            .collect(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{AccessPattern, Op};

    fn small_kernel() -> KernelDesc {
        KernelDesc::builder("capture-test")
            .threads_per_tb(64)
            .regs_per_thread(16)
            .grid_tbs(8)
            .iterations(2)
            .seed(99)
            .body(vec![Op::alu(4, 4), Op::mem_load(AccessPattern::tile(2048))])
            .build()
    }

    #[test]
    fn capture_is_deterministic_and_exact() {
        let desc = small_kernel();
        let a = capture(&desc, &GpuConfig::tiny(), 4_000).expect("capture");
        let b = capture(&desc, &GpuConfig::tiny(), 4_000).expect("capture");
        assert_eq!(a, b, "capture is a pure function of (desc, cfg, cycles)");
        a.validate().expect("captured traces are valid");
        assert_eq!(a.kernel(), desc, "replay rebuilds the identical kernel");
        assert!(!a.tbs.is_empty());
        assert!(a.tbs.iter().all(|r| r.drain_cycle > r.dispatch_cycle));
        assert_eq!(a.meta.source, CAPTURE_SOURCE);
    }

    #[test]
    fn too_short_window_is_a_typed_error() {
        // 10 cycles cannot drain a TB.
        let err = capture(&small_kernel(), &GpuConfig::tiny(), 10).unwrap_err();
        assert_eq!(err, CaptureError::NoCompletedTbs);
        assert!(!format!("{err}").is_empty());
    }
}
