//! Exporting case results as CSV for external analysis/plotting.
//!
//! The `repro` reports are human-oriented tables; this module serializes raw
//! [`CaseResult`]s so the figures can be re-plotted (or re-analysed) outside
//! Rust. One row per *kernel* per case keeps the format flat and
//! spreadsheet-friendly.

use std::fmt::Write as _;

use crate::metrics::CaseResult;

/// CSV header matching [`to_csv`]'s row layout.
pub const CSV_HEADER: &str = "policy,config,cycles,case_kernels,goal_kernel,kernel,slot,\
                              is_qos,goal_frac,goal_ipc,ipc,isolated_ipc,reached,\
                              nonqos_normalized,insts_per_energy,preemption_saves";

/// Serializes results to CSV (header + one row per kernel per case).
pub fn to_csv(results: &[CaseResult]) -> String {
    let mut out = String::with_capacity(results.len() * 128 + CSV_HEADER.len());
    out.push_str(CSV_HEADER);
    out.push('\n');
    for r in results {
        let case_kernels = r.spec.kernels.join("+");
        for (slot, name) in r.spec.kernels.iter().enumerate() {
            let goal_frac = r.spec.goal_fracs[slot];
            let _ = writeln!(
                out,
                "{},{:?},{},{},{},{},{},{},{},{},{:.4},{:.4},{},{:.4},{:.6},{}",
                r.spec.policy.label(),
                r.spec.config,
                r.spec.cycles,
                case_kernels,
                r.spec.kernels[0],
                name,
                slot,
                goal_frac.is_some(),
                goal_frac.map(|f| format!("{f:.2}")).unwrap_or_default(),
                r.goal_ipc[slot].map(|g| format!("{g:.2}")).unwrap_or_default(),
                r.ipc[slot],
                r.isolated_ipc[slot],
                r.kernel_reached(slot),
                r.nonqos_normalized(),
                r.insts_per_energy,
                r.preemption_saves,
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cases::{CaseSpec, Policy};
    use qos_core::QuotaScheme;

    fn sample() -> CaseResult {
        CaseResult {
            spec: CaseSpec::new(
                &["sgemm", "lbm"],
                &[Some(0.7), None],
                Policy::Quota(QuotaScheme::Rollover),
                1_000,
            ),
            ipc: vec![700.0, 40.0],
            isolated_ipc: vec![1_000.0, 120.0],
            goal_ipc: vec![Some(700.0), None],
            insts_per_energy: 1.5,
            preemption_saves: 4,
            trace_hash: 0,
        }
    }

    #[test]
    fn one_row_per_kernel_plus_header() {
        let csv = to_csv(&[sample()]);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("policy,"));
        assert!(lines[1].contains("Rollover"));
        assert!(lines[1].contains("sgemm+lbm"));
        assert!(lines[1].contains(",true,0.70,"));
        assert!(lines[2].contains(",lbm,1,false,,,"));
    }

    #[test]
    fn column_count_is_consistent() {
        let csv = to_csv(&[sample()]);
        let header_cols = CSV_HEADER.replace(char::is_whitespace, "").split(',').count();
        for line in csv.lines().skip(1) {
            assert_eq!(
                line.split(',').count(),
                header_cols,
                "row has wrong column count: {line}"
            );
        }
    }

    #[test]
    fn empty_results_yield_header_only() {
        let csv = to_csv(&[]);
        assert_eq!(csv.lines().count(), 1);
    }
}
