//! The coarse-grained baseline: spatial partitioning with hill climbing
//! (`Spart`, after Aguilera et al. [3]).
//!
//! Each kernel owns a disjoint set of SMs. Once per epoch the controller
//! takes one hill-climbing step: a lagging QoS kernel steals an SM from the
//! donor with the most headroom; a comfortably-over-goal QoS kernel returns
//! an SM to the non-QoS kernels. The tuning granularity is a whole SM —
//! exactly the coarseness the paper's fine-grained design removes.

use gpu_sim::{Controller, Gpu, KernelId, SmId};

use crate::goals::QosSpec;

/// Relative headroom a QoS kernel must keep after losing one SM for it to
/// qualify as a donor (hysteresis against oscillation).
const RELEASE_MARGIN: f64 = 1.05;

/// Spatial-partitioning QoS controller (the paper's `Spart`).
#[derive(Debug, Clone)]
pub struct SpartController {
    specs: Vec<QosSpec>,
    initialized: bool,
    cum_insts: Vec<u64>,
    cum_cycles: u64,
}

impl SpartController {
    /// Creates a controller with no kernels declared yet.
    pub fn new() -> Self {
        SpartController {
            specs: Vec::new(),
            initialized: false,
            cum_insts: Vec::new(),
            cum_cycles: 0,
        }
    }

    /// Declares the QoS spec of kernel `k` (defaults to best-effort).
    pub fn with_kernel(mut self, k: KernelId, spec: QosSpec) -> Self {
        if self.specs.len() <= k.index() {
            self.specs.resize(k.index() + 1, QosSpec::best_effort());
        }
        self.specs[k.index()] = spec;
        self
    }

    /// The kernel's cumulative IPC as tracked by the controller.
    pub fn history_ipc(&self, k: KernelId) -> f64 {
        if self.cum_cycles == 0 {
            0.0
        } else {
            self.cum_insts.get(k.index()).copied().unwrap_or(0) as f64 / self.cum_cycles as f64
        }
    }

    /// Number of SMs currently owned by kernel `k`.
    pub fn sms_of(&self, gpu: &Gpu, k: KernelId) -> usize {
        gpu.sm_ids().filter(|&sm| gpu.sm_owner(sm) == Some(k)).count()
    }

    fn init(&mut self, gpu: &mut Gpu) {
        let nk = gpu.num_kernels();
        if self.specs.len() < nk {
            self.specs.resize(nk, QosSpec::best_effort());
        }
        self.cum_insts = vec![0; nk];
        gpu.set_sharing_mode(gpu_sim::SharingMode::Spatial);
        // Even initial split, block-wise so each kernel's SMs are contiguous.
        let num_sms = gpu.sms().len();
        for si in 0..num_sms {
            let k = si * nk / num_sms;
            gpu.set_sm_owner(SmId::new(si), Some(KernelId::new(k)));
        }
        self.initialized = true;
    }

    /// Reassigns one SM from `from` to `to`; picks the highest-indexed SM of
    /// the donor. Returns whether a move happened.
    fn move_sm(&self, gpu: &mut Gpu, from: KernelId, to: KernelId) -> bool {
        let victim_sm = gpu.sm_ids().filter(|&sm| gpu.sm_owner(sm) == Some(from)).last();
        match victim_sm {
            Some(sm) => {
                gpu.set_sm_owner(sm, Some(to));
                true
            }
            None => false,
        }
    }

    /// One hill-climbing step (§2.3 / [3]): helps the most-lagging QoS
    /// kernel, or releases capacity from an over-achieving one.
    fn climb(&mut self, gpu: &mut Gpu) {
        let nk = gpu.num_kernels();
        let sms_of: Vec<usize> = (0..nk).map(|k| self.sms_of(gpu, KernelId::new(k))).collect();

        // Most-lagging QoS kernel by relative deficit.
        let lagging = (0..nk)
            .filter_map(|k| {
                let goal = self.specs[k].goal_ipc()?;
                let ipc = self.history_ipc(KernelId::new(k));
                (ipc < goal).then_some((k, ipc / goal))
            })
            .min_by(|a, b| a.1.total_cmp(&b.1));

        if let Some((needy, _)) = lagging {
            // Donor: the non-QoS kernel with the most SMs (keeping ≥ 1), else
            // a QoS kernel that stays above goal after losing one SM.
            let donor = (0..nk)
                .filter(|&k| k != needy && !self.specs[k].is_qos() && sms_of[k] > 1)
                .max_by_key(|&k| sms_of[k])
                .or_else(|| {
                    (0..nk).find(|&k| {
                        if k == needy || !self.specs[k].is_qos() || sms_of[k] < 2 {
                            return false;
                        }
                        let goal = self.specs[k].goal_ipc().expect("QoS kernel has goal");
                        let s = sms_of[k] as f64;
                        self.history_ipc(KernelId::new(k)) * (s - 1.0) / s > goal * RELEASE_MARGIN
                    })
                });
            if let Some(donor) = donor {
                self.move_sm(gpu, KernelId::new(donor), KernelId::new(needy));
            }
            return;
        }

        // All QoS goals met: return surplus SMs to the non-QoS kernels.
        let Some(beneficiary) =
            (0..nk).filter(|&k| !self.specs[k].is_qos()).min_by_key(|&k| sms_of[k])
        else {
            return;
        };
        let generous = (0..nk).find(|&k| {
            if !self.specs[k].is_qos() || sms_of[k] < 2 {
                return false;
            }
            let goal = self.specs[k].goal_ipc().expect("QoS kernel has goal");
            let s = sms_of[k] as f64;
            self.history_ipc(KernelId::new(k)) * (s - 1.0) / s > goal * RELEASE_MARGIN
        });
        if let Some(generous) = generous {
            self.move_sm(gpu, KernelId::new(generous), KernelId::new(beneficiary));
        }
    }
}

impl Default for SpartController {
    fn default() -> Self {
        SpartController::new()
    }
}

impl Controller for SpartController {
    fn on_epoch(&mut self, gpu: &mut Gpu, epoch: u64) {
        if !self.initialized {
            self.init(gpu);
        }
        if epoch > 0 {
            let snap = gpu.epoch_snapshot();
            self.cum_cycles += snap.cycles;
            for (k, cum) in self.cum_insts.iter_mut().enumerate() {
                *cum += snap.thread_insts[k];
            }
            self.climb(gpu);
        }
    }
}

gpu_sim::impl_snap_struct!(SpartController { specs, initialized, cum_insts, cum_cycles });

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{GpuConfig, NullController};

    fn isolated_ipc(name: &str, cycles: u64) -> f64 {
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let k = gpu.launch(workloads::by_name(name).expect("known"));
        gpu.run(cycles, &mut NullController);
        gpu.stats().ipc(k)
    }

    #[test]
    fn initial_split_is_even() {
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let a = gpu.launch(workloads::by_name("sgemm").unwrap());
        let b = gpu.launch(workloads::by_name("lbm").unwrap());
        let mut ctrl = SpartController::new()
            .with_kernel(a, QosSpec::qos(100.0))
            .with_kernel(b, QosSpec::best_effort());
        gpu.run(1, &mut ctrl);
        assert_eq!(ctrl.sms_of(&gpu, a), 8);
        assert_eq!(ctrl.sms_of(&gpu, b), 8);
    }

    #[test]
    fn lagging_qos_kernel_gains_sms() {
        let iso = isolated_ipc("sgemm", 40_000);
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let q = gpu.launch(workloads::by_name("sgemm").unwrap());
        let b = gpu.launch(workloads::by_name("lbm").unwrap());
        // 90% of isolated IPC is impossible on 8 of 16 SMs; the hill climber
        // must shift SMs toward the QoS kernel.
        let mut ctrl = SpartController::new()
            .with_kernel(q, QosSpec::qos(0.9 * iso))
            .with_kernel(b, QosSpec::best_effort());
        gpu.run(120_000, &mut ctrl);
        assert!(
            ctrl.sms_of(&gpu, q) > 8,
            "QoS kernel should have gained SMs, has {}",
            ctrl.sms_of(&gpu, q)
        );
        assert!(ctrl.sms_of(&gpu, b) >= 1, "donor keeps at least one SM");
    }

    #[test]
    fn modest_goal_leaves_sms_with_nonqos() {
        let iso = isolated_ipc("sgemm", 40_000);
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let q = gpu.launch(workloads::by_name("sgemm").unwrap());
        let b = gpu.launch(workloads::by_name("lbm").unwrap());
        let mut ctrl = SpartController::new()
            .with_kernel(q, QosSpec::qos(0.3 * iso))
            .with_kernel(b, QosSpec::best_effort());
        gpu.run(120_000, &mut ctrl);
        assert!(
            ctrl.sms_of(&gpu, b) >= 8,
            "easy goal: non-QoS keeps (or gains) its half, has {}",
            ctrl.sms_of(&gpu, b)
        );
    }

    #[test]
    fn donor_never_loses_its_last_sm() {
        // An impossible goal makes the QoS kernel steal every epoch; the
        // non-QoS kernel must still keep one SM.
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let q = gpu.launch(workloads::by_name("spmv").unwrap());
        let b = gpu.launch(workloads::by_name("lbm").unwrap());
        let mut ctrl = SpartController::new()
            .with_kernel(q, QosSpec::qos(100_000.0))
            .with_kernel(b, QosSpec::best_effort());
        gpu.run(200_000, &mut ctrl);
        assert!(ctrl.sms_of(&gpu, b) >= 1, "hill climbing must not evict the last SM");
        assert_eq!(ctrl.sms_of(&gpu, q) + ctrl.sms_of(&gpu, b), 16);
    }

    #[test]
    fn two_qos_kernels_split_by_need() {
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let a = gpu.launch(workloads::by_name("sgemm").unwrap());
        let b = gpu.launch(workloads::by_name("mri-q").unwrap());
        let c = gpu.launch(workloads::by_name("lbm").unwrap());
        let mut ctrl = SpartController::new()
            .with_kernel(a, QosSpec::qos(400.0))
            .with_kernel(b, QosSpec::qos(400.0))
            .with_kernel(c, QosSpec::best_effort());
        gpu.run(100_000, &mut ctrl);
        for k in [a, b, c] {
            assert!(ctrl.sms_of(&gpu, k) >= 1, "every kernel keeps at least one SM");
        }
    }

    #[test]
    fn spart_does_not_gate_quotas() {
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        let q = gpu.launch(workloads::by_name("sgemm").unwrap());
        let b = gpu.launch(workloads::by_name("lbm").unwrap());
        let mut ctrl = SpartController::new()
            .with_kernel(q, QosSpec::qos(10.0))
            .with_kernel(b, QosSpec::best_effort());
        gpu.run(30_000, &mut ctrl);
        // Even with a trivial goal the QoS kernel is free to exceed it —
        // Spart has no per-cycle throttle (that's Fig. 9's overshoot story).
        assert!(gpu.stats().ipc(q) > 100.0);
    }
}
