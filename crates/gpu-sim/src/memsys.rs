//! The shared memory system: crossbar, per-MC L2 slices and DRAM channels.
//!
//! This is its own execution domain (DESIGN.md §13): SM domains never call
//! into it mid-cycle. Each warp memory instruction becomes a typed request
//! in the issuing SM's `IcnPort`; at the port-drain barrier the requests are
//! presented to [`MemSystem::serve`] in stable SM-index order, and the
//! returned completion cycle — when the slowest transaction finishes and the
//! warp becomes ready again — travels back as the response. Per-kernel
//! traffic counters feed the power model and the harness reports.

use crate::cache::{AccessOutcome, Cache};
use crate::config::MemConfig;
use crate::dram::ServiceQueue;
use crate::types::{per_kernel, Addr, Cycle, KernelId, PerKernel};

/// Per-kernel memory traffic counters (in transactions).
#[derive(Debug, Clone)]
pub struct MemTraffic {
    /// L1 accesses (every global transaction).
    pub l1_accesses: PerKernel<u64>,
    /// L2 accesses (L1 misses).
    pub l2_accesses: PerKernel<u64>,
    /// DRAM accesses (L2 misses).
    pub dram_accesses: PerKernel<u64>,
    /// Context save/restore transactions caused by preempting this kernel.
    pub context_transactions: PerKernel<u64>,
}

impl Default for MemTraffic {
    fn default() -> Self {
        MemTraffic {
            l1_accesses: per_kernel(|_| 0),
            l2_accesses: per_kernel(|_| 0),
            dram_accesses: per_kernel(|_| 0),
            context_transactions: per_kernel(|_| 0),
        }
    }
}

/// The GPU-wide shared memory hierarchy below the per-SM L1s.
#[derive(Debug)]
pub struct MemSystem {
    cfg: MemConfig,
    l2: Vec<Cache>,
    l2_queue: Vec<ServiceQueue>,
    dram_queue: Vec<ServiceQueue>,
    traffic: MemTraffic,
    context_rr: usize,
    // Reusable L1-miss scratch for `access_lines`, so out-of-domain callers
    // get the same allocation-free steady state as the `IcnPort` path.
    miss_scratch: Vec<Addr>,
}

impl MemSystem {
    /// Builds the memory system from its configuration.
    pub fn new(cfg: MemConfig) -> Self {
        let n = cfg.num_mcs as usize;
        MemSystem {
            l2: (0..n).map(|_| Cache::new(cfg.l2_bytes, cfg.l2_ways, cfg.line_bytes)).collect(),
            l2_queue: (0..n)
                .map(|_| ServiceQueue::new(cfg.l2_service_cycles, cfg.max_queue_backlog))
                .collect(),
            dram_queue: (0..n)
                .map(|_| ServiceQueue::new(cfg.dram_service_cycles, cfg.max_queue_backlog))
                .collect(),
            traffic: MemTraffic::default(),
            context_rr: 0,
            miss_scratch: Vec::new(),
            cfg,
        }
    }

    /// Memory configuration in use.
    pub fn config(&self) -> &MemConfig {
        &self.cfg
    }

    /// Maps a line address to its memory controller.
    #[inline]
    pub fn mc_for(&self, addr: Addr) -> usize {
        ((addr >> self.cfg.line_bytes.trailing_zeros()) % u64::from(self.cfg.num_mcs)) as usize
    }

    /// Serves one warp memory instruction arriving over the interconnect
    /// boundary: `miss_lines` are the line addresses that already missed the
    /// issuing SM's private L1 (filtered on the SM side of the `IcnPort`),
    /// `total_lines` the coalesced transaction count before filtering (L1
    /// accounting lives here so the whole traffic ledger stays in the memory
    /// domain). Returns the completion cycle of the slowest transaction.
    ///
    /// This is the only entry point for SM-issued traffic; it is called from
    /// the port drain in stable SM-index order, which makes the queue and L2
    /// evolution — and therefore every returned cycle — independent of how
    /// the SM domains were stepped (DESIGN.md §13).
    pub fn serve(
        &mut self,
        kernel: KernelId,
        miss_lines: &[Addr],
        total_lines: u64,
        now: Cycle,
    ) -> Cycle {
        let k = kernel.index();
        let mut done = now + Cycle::from(self.cfg.l1_hit_latency);
        self.traffic.l1_accesses[k] += total_lines;
        for &addr in miss_lines {
            self.traffic.l2_accesses[k] += 1;
            let mc = self.mc_for(addr);
            let at_l2 = now + Cycle::from(self.cfg.l1_hit_latency + self.cfg.xbar_latency);
            let l2_served = self.l2_queue[mc].serve(at_l2);
            let filled = match self.l2[mc].access(addr) {
                AccessOutcome::Hit => l2_served + Cycle::from(self.cfg.l2_hit_latency),
                AccessOutcome::Miss => {
                    self.traffic.dram_accesses[k] += 1;
                    self.dram_queue[mc].serve(l2_served + Cycle::from(self.cfg.l2_hit_latency))
                        + Cycle::from(self.cfg.dram_latency)
                }
            };
            done = done.max(filled + Cycle::from(self.cfg.xbar_latency));
        }
        done
    }

    /// Convenience wrapper around [`MemSystem::serve`] that performs the L1
    /// lookups too: filters `lines` through the caller-owned `l1` and hands
    /// the misses to the shared hierarchy. Kept for callers that sit outside
    /// the per-SM domains (unit tests, standalone experiments); the simulator
    /// core itself filters in the SM domain and drains through the `IcnPort`.
    pub fn access_lines(
        &mut self,
        kernel: KernelId,
        l1: &mut Cache,
        lines: &[Addr],
        now: Cycle,
    ) -> Cycle {
        let mut misses = std::mem::take(&mut self.miss_scratch);
        misses.clear();
        misses.extend(lines.iter().copied().filter(|&a| l1.access(a) == AccessOutcome::Miss));
        let done = self.serve(kernel, &misses, lines.len() as u64, now);
        // Hand the buffer back so the next access reuses the allocation.
        self.miss_scratch = misses;
        done
    }

    /// Injects context save/restore traffic for a preemption of `kernel`:
    /// `bytes` of register/shared-memory state written to (or read from)
    /// device memory. Consumes DRAM bandwidth round-robin across channels
    /// and returns when the last transaction completes.
    pub fn inject_context_traffic(&mut self, kernel: KernelId, bytes: u64, now: Cycle) -> Cycle {
        let lines = bytes.div_ceil(u64::from(self.cfg.line_bytes));
        self.traffic.context_transactions[kernel.index()] += lines;
        let mut done = now;
        for _ in 0..lines {
            let mc = self.context_rr;
            self.context_rr = (self.context_rr + 1) % self.dram_queue.len();
            done = done.max(self.dram_queue[mc].serve(now) + Cycle::from(self.cfg.dram_latency));
        }
        done
    }

    /// The earliest cycle at which any L2 slice or DRAM channel queue drains,
    /// or `None` when the whole memory system is idle at `now`.
    ///
    /// The memory system holds no autonomous events: every transaction's
    /// completion cycle is computed eagerly at [`MemSystem::access_lines`]
    /// time and carried by the issuing warp's `ready_at`, so in-flight
    /// requests complete correctly across any idle-cycle jump without the
    /// queues being ticked. Fast-forward consequently never clamps to this
    /// horizon — it is exposed for introspection and as the memory system's
    /// half of the `next_event` protocol.
    pub fn next_event(&self, now: Cycle) -> Option<Cycle> {
        self.l2_queue.iter().chain(&self.dram_queue).filter_map(|q| q.next_event(now)).min()
    }

    /// Per-kernel traffic counters.
    pub fn traffic(&self) -> &MemTraffic {
        &self.traffic
    }

    /// L2 slice hit/miss statistics, aggregated over all slices.
    pub fn l2_stats(&self) -> crate::cache::CacheStats {
        let mut agg = crate::cache::CacheStats::default();
        for c in &self.l2 {
            agg.hits += c.stats().hits;
            agg.misses += c.stats().misses;
        }
        agg
    }

    /// The per-channel L2 service queues (counter-registry introspection).
    pub fn l2_queues(&self) -> &[ServiceQueue] {
        &self.l2_queue
    }

    /// The per-channel DRAM service queues (counter-registry introspection).
    pub fn dram_queues(&self) -> &[ServiceQueue] {
        &self.dram_queue
    }

    /// Mean DRAM queueing delay across channels, in cycles.
    pub fn mean_dram_wait(&self) -> f64 {
        let served: u64 = self.dram_queue.iter().map(ServiceQueue::served).sum();
        if served == 0 {
            return 0.0;
        }
        let weighted: f64 = self.dram_queue.iter().map(|q| q.mean_wait() * q.served() as f64).sum();
        weighted / served as f64
    }
}

crate::impl_snap_struct!(MemTraffic {
    l1_accesses,
    l2_accesses,
    dram_accesses,
    context_transactions,
});

// `miss_scratch` is per-call scratch, always cleared before use, so a
// restored memory system starts with an empty (re-growable) buffer.
crate::impl_snap_struct!(MemSystem { cfg, l2, l2_queue, dram_queue, traffic, context_rr } skip {
    miss_scratch
});

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MemConfig;

    fn sys() -> (MemSystem, Cache) {
        let cfg = MemConfig::default();
        let l1 = Cache::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes);
        (MemSystem::new(cfg), l1)
    }

    #[test]
    fn l1_hit_is_fast() {
        let (mut m, mut l1) = sys();
        let k = KernelId::new(0);
        let first = m.access_lines(k, &mut l1, &[0x1000], 0);
        let second = m.access_lines(k, &mut l1, &[0x1000], first);
        assert_eq!(second - first, u64::from(m.config().l1_hit_latency));
        assert!(first > second - first, "first access (miss) must be slower");
    }

    #[test]
    fn miss_path_goes_through_l2_and_dram() {
        let (mut m, mut l1) = sys();
        let k = KernelId::new(0);
        m.access_lines(k, &mut l1, &[0x2000], 0);
        let t = m.traffic();
        assert_eq!(t.l1_accesses[0], 1);
        assert_eq!(t.l2_accesses[0], 1);
        assert_eq!(t.dram_accesses[0], 1);
    }

    #[test]
    fn l2_hit_skips_dram() {
        let (mut m, mut l1) = sys();
        let k = KernelId::new(0);
        m.access_lines(k, &mut l1, &[0x3000], 0);
        l1.flush(); // force the next access to miss L1 but hit L2
        m.access_lines(k, &mut l1, &[0x3000], 10_000);
        assert_eq!(m.traffic().dram_accesses[0], 1, "second access must hit in L2");
        assert_eq!(m.traffic().l2_accesses[0], 2);
    }

    #[test]
    fn addresses_spread_across_mcs() {
        let (m, _) = sys();
        let line = u64::from(m.config().line_bytes);
        let mcs: std::collections::HashSet<usize> = (0..8u64).map(|i| m.mc_for(i * line)).collect();
        assert_eq!(mcs.len(), m.config().num_mcs as usize);
    }

    #[test]
    fn contention_slows_the_second_kernel() {
        let (mut m, mut l1a) = sys();
        let cfg = m.config().clone();
        let mut l1b = Cache::new(cfg.l1_bytes, cfg.l1_ways, cfg.line_bytes);
        let ka = KernelId::new(0);
        let kb = KernelId::new(1);
        // Kernel A floods one channel.
        let line = u64::from(cfg.line_bytes);
        let nmc = u64::from(cfg.num_mcs);
        let flood: Vec<u64> = (0..64).map(|i| i * line * nmc).collect();
        m.access_lines(ka, &mut l1a, &flood, 0);
        // Kernel B's single access to the same channel now queues.
        let solo_latency = {
            let (mut fresh, mut l1) = sys();
            fresh.access_lines(kb, &mut l1, &[1 << 30], 0)
        };
        let contended = m.access_lines(kb, &mut l1b, &[(1u64 << 30) / nmc * nmc], 0);
        assert!(
            contended > solo_latency,
            "contended access ({contended}) must exceed solo latency ({solo_latency})"
        );
    }

    #[test]
    fn context_traffic_counts_lines() {
        let (mut m, _) = sys();
        let k = KernelId::new(2);
        let done = m.inject_context_traffic(k, 1024, 0);
        assert_eq!(m.traffic().context_transactions[2], 1024 / 32);
        assert!(done > 0);
    }

    #[test]
    fn multi_line_access_completion_is_max() {
        let (mut m, mut l1) = sys();
        let k = KernelId::new(0);
        let one = m.access_lines(k, &mut l1, &[0x10_0000], 0);
        let (mut m2, mut l1b) = sys();
        let many_addrs: Vec<u64> = (0..32u64).map(|i| 0x10_0000 + i * 32).collect();
        let many = m2.access_lines(k, &mut l1b, &many_addrs, 0);
        assert!(many >= one, "32 transactions can't finish before 1");
    }
}
