//! A streaming multiprocessor: one self-contained execution domain.
//!
//! The SM executes resident thread blocks' warps under a warp-scheduling
//! policy, gated by the per-kernel *quota counters* that implement the
//! paper's Enhanced Warp Scheduler (EWS): a kernel whose counter is
//! exhausted is simply skipped by the (otherwise unmodified) scheduler.
//! Mid-epoch refill rules (non-QoS top-up, elastic epoch restart) are
//! evaluated lazily when a blocked warp is encountered, so the per-cycle
//! issue loop stays branch-light.
//!
//! Every field of [`Sm`] is private, domain-local state: the
//! struct-of-arrays [`WarpTable`] and TB slab, the private L1, quota
//! counters, statistics, and the flight-recorder ring. The one piece of
//! shared machine state an SM used to reach into — the L2/DRAM hierarchy —
//! is behind the typed [`crate::icn::IcnPort`] boundary: [`Sm::tick`] takes
//! no `MemSystem` and instead enqueues requests that the machine drains at
//! the end-of-cycle barrier in stable SM-index order (DESIGN.md §13). That
//! isolation is what lets `intra_parallel` stepping run SM domains on
//! concurrent threads with bit-identical results.
//!
//! Module map:
//!
//! | module       | owns                                                     |
//! |--------------|----------------------------------------------------------|
//! | `mod.rs`     | the [`Sm`] struct, construction, snapshot codec          |
//! | `warp_table` | struct-of-arrays warp state + packed bitmasks            |
//! | `slots`      | occupancy: TB dispatch, preemption, completion, audits   |
//! | `quota`      | the EWS quota gate: carry rules, refills, fault freezes  |
//! | `issue`      | the front end: bitmask ready-scan, issue, `IcnPort`      |
//! | `observe`    | sampling, counters, and every read-only stats accessor   |

mod issue;
mod observe;
mod quota;
mod slots;
#[cfg(test)]
mod tests;
mod warp_table;

pub use quota::QuotaCarry;
pub use warp_table::WarpTable;

use std::cell::Cell;
use std::sync::Arc;

use crate::cache::Cache;
use crate::config::GpuConfig;
use crate::icn::IcnPort;
use crate::kernel::KernelDesc;
use crate::observe::{EventRing, TraceEvent, TraceEventKind};
use crate::preempt::{PreemptStats, SavedTb};
use crate::tb::TbSlab;
use crate::telemetry::LatencyHistogram;
use crate::types::{per_kernel, Cycle, KernelId, PerKernel, SmId, TbIndex};
use crate::warp_sched::{SchedPolicy, SchedulerState};

/// Per-kernel issue counters of one SM for one epoch.
#[derive(Debug, Clone, Copy, Default)]
pub struct SmKernelCounters {
    /// Thread-level instructions issued (what quotas count).
    pub thread_insts: u64,
    /// Warp-level instructions issued.
    pub warp_insts: u64,
}

/// Memoized result of [`Sm::next_event`].
///
/// The next-event horizon only changes when an input of the computation
/// changes (a warp issues or wakes, a TB transitions, quota/fault state
/// flips); every such mutation calls `invalidate`. Between mutations —
/// notably across the repeated fast-forward probes of a quiescent SM — the
/// cached value is returned without rescanning the warp table.
///
/// Interior mutability (`Cell`) keeps `next_event` callable through `&self`;
/// `Sm` only needs `Send` for pool stepping, which `Cell` satisfies.
#[derive(Debug)]
struct WakeCache {
    valid: Cell<bool>,
    value: Cell<Option<Cycle>>,
}

impl Default for WakeCache {
    // Invalid by default: a freshly decoded (skip-field) cache recomputes on
    // first use, so restore never observes a stale horizon.
    fn default() -> Self {
        WakeCache { valid: Cell::new(false), value: Cell::new(None) }
    }
}

impl WakeCache {
    #[inline]
    fn invalidate(&self) {
        self.valid.set(false);
    }

    #[inline]
    fn get(&self) -> Option<Option<Cycle>> {
        if self.valid.get() {
            Some(self.value.get())
        } else {
            None
        }
    }

    #[inline]
    fn put(&self, v: Option<Cycle>) {
        self.value.set(v);
        self.valid.set(true);
    }
}

/// A streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    id: SmId,
    policy: SchedPolicy,
    num_scheds: u16,
    max_warps: u16,
    max_tbs: u16,
    max_threads: u32,
    regfile_bytes: u64,
    smem_bytes: u64,

    l1: Cache,
    descs: PerKernel<Option<Arc<KernelDesc>>>,
    // Flattened mirror of each registered kernel's op body, so the issue
    // path reads the current op through one indexed load instead of chasing
    // `Option<Arc<KernelDesc>>` → `Vec` on every dynamic instruction.
    // Written alongside `descs` in `set_kernel_desc`; skip-snapped (a
    // restored SM rebuilds each entry lazily on its first issue).
    bodies: PerKernel<Vec<crate::kernel::Op>>,

    // Domain-local copies of machine config consulted on the issue path;
    // the SM must not reach across the interconnect boundary to read them.
    l1_hit_latency: u32,
    line_bytes: u32,

    used_threads: u32,
    used_regs: u64,
    used_smem: u64,

    warps: WarpTable,
    tbs: TbSlab,
    scheds: Vec<SchedulerState>,
    next_age: u64,
    transitioning: Vec<u16>,

    // --- interconnect boundary (DESIGN.md §13) ---
    // Requests filled by `issue`, drained by the machine at the end-of-cycle
    // barrier; empty outside the step→drain window of a single cycle.
    icn: IcnPort,

    // --- quota state (EWS) ---
    quota: PerKernel<i64>,
    gated: PerKernel<bool>,
    refill: PerKernel<i64>,
    is_qos: PerKernel<bool>,
    elastic: bool,
    priority_block: bool,

    // --- quota double-entry ledger (audit mode) ---
    // Every change to `quota` flows through exactly two channels: credits
    // (epoch grants, mid-epoch refills) and debits (issued lanes while
    // gated). `quota[k] == quota_credit[k] - quota_debit[k]` is then a
    // conservation law any stray mutation breaks.
    quota_credit: PerKernel<i64>,
    quota_debit: PerKernel<i64>,

    // --- injected faults ---
    quota_frozen: bool,
    sched_frozen: bool,
    preempt_stalled: bool,

    // --- statistics ---
    hosted: PerKernel<u16>,
    counters: PerKernel<SmKernelCounters>,
    alu_thread_insts: PerKernel<u64>,
    sfu_thread_insts: PerKernel<u64>,
    smem_accesses: PerKernel<u64>,
    busy_cycles: u64,
    issue_slots: u64,
    issued_total: u64,
    idle_warp_acc: PerKernel<u64>,
    idle_samples: u64,
    preempt_stats: PreemptStats,
    // Per-kernel preemption-save latency (context-save cost per save),
    // log-bucketed; snapshotted like every other statistic (DESIGN.md §17).
    preempt_save_hist: PerKernel<LatencyHistogram>,

    // --- observability (counter registry + flight recorder, DESIGN.md §12) ---
    trace_on: bool,
    events: EventRing,
    quota_blocked: PerKernel<u64>,
    quota_exhaustions: PerKernel<u64>,
    scoreboard_waits: PerKernel<u64>,

    // --- outboxes drained by the TB scheduler ---
    completed: Vec<(KernelId, TbIndex)>,
    saved: Vec<(KernelId, SavedTb)>,

    // Per-tick scratch: live-candidate mask words (occupied, not done, not
    // at a barrier, TB active), computed once per tick and scanned per
    // scheduler. Rebuilt every tick, so restore-as-empty is safe.
    live_buf: Vec<u64>,
    // Per-scheduler slot-stripe masks (bit set iff slot % num_scheds == sid).
    // Pure function of the geometry; lazily rebuilt when empty, so a
    // restored SM regenerates them on its first tick.
    stride_masks: Vec<Vec<u64>>,
    // Memoized next-event horizon (see `WakeCache`).
    wake: WakeCache,

    // --- host-side profiling (opt-in, cascaded from `Gpu::set_profiling`) ---
    // Accumulated wall-nanoseconds and span count of ready-warp selection,
    // harvested by the machine after each stepping barrier. Skip-snapped:
    // profiling state never travels through checkpoints.
    profile_issue: bool,
    issue_select_nanos: u64,
    issue_select_calls: u64,
}

impl Sm {
    /// Builds an SM from the GPU configuration.
    pub fn new(id: SmId, cfg: &GpuConfig) -> Self {
        let max_warps = cfg.sm.max_warps() as u16;
        let max_tbs = cfg.sm.max_tbs as u16;
        Sm {
            id,
            policy: cfg.sm.sched_policy,
            num_scheds: cfg.sm.warp_schedulers as u16,
            max_warps,
            max_tbs,
            max_threads: cfg.sm.max_threads,
            regfile_bytes: cfg.sm.register_file_bytes,
            smem_bytes: cfg.sm.shared_mem_bytes,
            l1: Cache::new(cfg.mem.l1_bytes, cfg.mem.l1_ways, cfg.mem.line_bytes),
            descs: per_kernel(|_| None),
            bodies: per_kernel(|_| Vec::new()),
            l1_hit_latency: cfg.mem.l1_hit_latency,
            line_bytes: cfg.mem.line_bytes,
            used_threads: 0,
            used_regs: 0,
            used_smem: 0,
            warps: WarpTable::new(max_warps),
            tbs: TbSlab::new(max_tbs),
            scheds: vec![SchedulerState::default(); cfg.sm.warp_schedulers as usize],
            next_age: 0,
            transitioning: Vec::new(),
            icn: IcnPort::default(),
            quota: per_kernel(|_| 0),
            gated: per_kernel(|_| false),
            refill: per_kernel(|_| 0),
            is_qos: per_kernel(|_| false),
            elastic: false,
            priority_block: false,
            quota_credit: per_kernel(|_| 0),
            quota_debit: per_kernel(|_| 0),
            quota_frozen: false,
            sched_frozen: false,
            preempt_stalled: false,
            hosted: per_kernel(|_| 0),
            counters: per_kernel(|_| SmKernelCounters::default()),
            alu_thread_insts: per_kernel(|_| 0),
            sfu_thread_insts: per_kernel(|_| 0),
            smem_accesses: per_kernel(|_| 0),
            busy_cycles: 0,
            issue_slots: 0,
            issued_total: 0,
            idle_warp_acc: per_kernel(|_| 0),
            idle_samples: 0,
            preempt_stats: PreemptStats::default(),
            preempt_save_hist: per_kernel(|_| LatencyHistogram::new()),
            trace_on: cfg.trace.level.is_on(),
            events: EventRing::new(if cfg.trace.level.is_on() {
                cfg.trace.ring_capacity
            } else {
                0
            }),
            quota_blocked: per_kernel(|_| 0),
            quota_exhaustions: per_kernel(|_| 0),
            scoreboard_waits: per_kernel(|_| 0),
            completed: Vec::new(),
            saved: Vec::new(),
            live_buf: Vec::new(),
            stride_masks: Vec::new(),
            wake: WakeCache::default(),
            profile_issue: false,
            issue_select_nanos: 0,
            issue_select_calls: 0,
        }
    }

    /// This SM's identifier.
    pub fn id(&self) -> SmId {
        self.id
    }

    /// Enables or disables ready-warp-selection profiling for this SM.
    pub fn set_issue_profiling(&mut self, on: bool) {
        self.profile_issue = on;
        self.issue_select_nanos = 0;
        self.issue_select_calls = 0;
    }

    /// Takes the accumulated `issue_select` span (nanos, calls), resetting
    /// the accumulators. Harvested by the machine after a stepping barrier.
    pub fn take_issue_select(&mut self) -> (u64, u64) {
        let out = (self.issue_select_nanos, self.issue_select_calls);
        self.issue_select_nanos = 0;
        self.issue_select_calls = 0;
        out
    }

    /// Builds the per-scheduler slot-stripe masks: bit `s` of
    /// `stride_masks[sid]` is set iff warp slot `s` belongs to scheduler
    /// `sid` (`s % num_scheds == sid`), mirroring the strided slot walk of
    /// the pre-SoA gather loop.
    fn build_stride_masks(&mut self) {
        let words = self.warps.words();
        let scheds = usize::from(self.num_scheds).max(1);
        self.stride_masks = vec![vec![0u64; words]; scheds];
        for slot in 0..usize::from(self.max_warps) {
            self.stride_masks[slot % scheds][slot / 64] |= 1 << (slot % 64);
        }
    }

    /// Records a flight-recorder event. A single branch when tracing is off,
    /// so the hot path stays free of ring-buffer work at level `Off`.
    #[inline]
    fn record(&mut self, cycle: Cycle, kind: TraceEventKind) {
        if self.trace_on {
            self.events.push(TraceEvent { cycle, sm: Some(self.id.index() as u32), kind });
        }
    }
}

crate::impl_snap_struct!(SmKernelCounters { thread_insts, warp_insts });

// `bodies` is a pure mirror of `descs`, rebuilt lazily by `issue`;
// `live_buf` is per-tick scratch, always rebuilt before use;
// `icn` is pure transit state, always empty outside the step→drain window of
// one cycle (snapshots are taken at epoch boundaries, between cycles);
// `stride_masks` is a pure function of the geometry, lazily rebuilt;
// `wake` decodes invalid and recomputes on first use; the `profile_*`
// accumulators are host-side instrumentation re-armed by `set_profiling`.
// A restored SM therefore starts with empty/default values for all of them.
crate::impl_snap_struct!(Sm {
    id,
    policy,
    num_scheds,
    max_warps,
    max_tbs,
    max_threads,
    regfile_bytes,
    smem_bytes,
    l1,
    descs,
    l1_hit_latency,
    line_bytes,
    used_threads,
    used_regs,
    used_smem,
    warps,
    tbs,
    scheds,
    next_age,
    transitioning,
    quota,
    gated,
    refill,
    is_qos,
    elastic,
    priority_block,
    quota_credit,
    quota_debit,
    quota_frozen,
    sched_frozen,
    preempt_stalled,
    hosted,
    counters,
    alu_thread_insts,
    sfu_thread_insts,
    smem_accesses,
    busy_cycles,
    issue_slots,
    issued_total,
    idle_warp_acc,
    idle_samples,
    preempt_stats,
    preempt_save_hist,
    trace_on,
    events,
    quota_blocked,
    quota_exhaustions,
    scoreboard_waits,
    completed,
    saved,
} skip {
    icn,
    bodies,
    live_buf,
    stride_masks,
    wake,
    profile_issue,
    issue_select_nanos,
    issue_select_calls
});
