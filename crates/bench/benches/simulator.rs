//! Micro-benchmarks of the simulator substrate.
//!
//! These measure simulation throughput (simulated cycles per second) for the
//! building blocks the experiments stress: isolated compute / memory
//! kernels, SMK co-runs with quota gating, spatial partitioning, and
//! preemption churn.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use gpu_sim::{Gpu, GpuConfig, NullController, SharingMode};
use qos_core::{QosManager, QosSpec, QuotaScheme, SpartController};

const CYCLES: u64 = 20_000;

fn isolated(c: &mut Criterion, name: &str, bench: &str) {
    let mut g = c.benchmark_group("isolated");
    g.throughput(Throughput::Elements(CYCLES));
    g.bench_function(name, |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::paper_table1());
            let k = gpu.launch(workloads::by_name(bench).expect("known"));
            gpu.run(CYCLES, &mut NullController);
            gpu.stats().ipc(k)
        })
    });
    g.finish();
}

fn corun_smk(c: &mut Criterion) {
    let mut g = c.benchmark_group("corun");
    g.throughput(Throughput::Elements(CYCLES));
    g.bench_function("smk_rollover_pair", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::paper_table1());
            let q = gpu.launch(workloads::by_name("sgemm").expect("known"));
            let be = gpu.launch(workloads::by_name("lbm").expect("known"));
            let mut mgr = QosManager::new(QuotaScheme::Rollover)
                .with_kernel(q, QosSpec::qos(800.0))
                .with_kernel(be, QosSpec::best_effort());
            gpu.run(CYCLES, &mut mgr);
            gpu.stats().total_ipc()
        })
    });
    g.bench_function("spart_pair", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::paper_table1());
            let q = gpu.launch(workloads::by_name("sgemm").expect("known"));
            let be = gpu.launch(workloads::by_name("lbm").expect("known"));
            let mut ctrl = SpartController::new()
                .with_kernel(q, QosSpec::qos(800.0))
                .with_kernel(be, QosSpec::best_effort());
            gpu.run(CYCLES, &mut ctrl);
            gpu.stats().total_ipc()
        })
    });
    g.bench_function("unmanaged_trio", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::paper_table1());
            for name in ["sgemm", "lbm", "spmv"] {
                gpu.launch(workloads::by_name(name).expect("known"));
            }
            gpu.set_sharing_mode(SharingMode::Smk);
            gpu.run(CYCLES, &mut NullController);
            gpu.stats().total_ipc()
        })
    });
    g.finish();
}

fn preemption_churn(c: &mut Criterion) {
    let mut g = c.benchmark_group("preemption");
    g.throughput(Throughput::Elements(CYCLES));
    g.bench_function("target_flip_churn", |b| {
        b.iter(|| {
            // Alternate TB targets between two kernels every epoch, forcing
            // continuous partial context switching.
            struct Flipper;
            impl gpu_sim::Controller for Flipper {
                fn on_epoch(&mut self, gpu: &mut Gpu, epoch: u64) {
                    let (a, b) = if epoch.is_multiple_of(2) { (6, 2) } else { (2, 6) };
                    for sm in gpu.sm_ids().collect::<Vec<_>>() {
                        gpu.set_tb_target(sm, gpu_sim::KernelId::new(0), a);
                        gpu.set_tb_target(sm, gpu_sim::KernelId::new(1), b);
                    }
                }
            }
            let mut gpu = Gpu::new(GpuConfig::paper_table1());
            gpu.launch(workloads::by_name("cutcp").expect("known"));
            gpu.launch(workloads::by_name("stencil").expect("known"));
            gpu.set_sharing_mode(SharingMode::Smk);
            gpu.run(CYCLES, &mut Flipper);
            gpu.preempt_stats().saves
        })
    });
    g.finish();
}

fn trace_replay(c: &mut Criterion) {
    let mut g = c.benchmark_group("trace_replay");
    // Capture once outside the timing loop; the benchmarks measure the
    // codec (encode + strict decode) and a replayed run separately.
    let desc = workloads::by_name("sgemm").expect("known");
    let kt =
        trace::capture(&desc, &GpuConfig::tiny(), trace::DEFAULT_CAPTURE_CYCLES).expect("capture");
    let bytes = trace::to_bytes(&kt);
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("fgtr_round_trip", |b| {
        b.iter(|| trace::from_bytes(&trace::to_bytes(&kt)).expect("strict reader"))
    });
    g.throughput(Throughput::Elements(CYCLES));
    g.bench_function("replayed_sgemm", |b| {
        b.iter(|| {
            let mut gpu = Gpu::new(GpuConfig::paper_table1());
            let k = gpu.launch(kt.kernel());
            gpu.run(CYCLES, &mut NullController);
            gpu.stats().ipc(k)
        })
    });
    g.finish();
}

fn simulator(c: &mut Criterion) {
    isolated(c, "compute_sgemm", "sgemm");
    isolated(c, "memory_lbm", "lbm");
    isolated(c, "irregular_spmv", "spmv");
    corun_smk(c);
    preemption_churn(c);
    trace_replay(c);
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(2));
    targets = simulator
}
criterion_main!(benches);
