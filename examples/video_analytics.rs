//! Video analytics: derive an IPC goal from a *frame rate* and enforce it.
//!
//! This is the motivating workload of the paper's introduction: a frame
//! processing kernel (one grid execution per frame) must sustain 60 fps
//! while a best-effort training job soaks up the remaining capacity. The
//! goal translation follows §3.2 — frame budget minus PCIe transfer time,
//! converted to IPC via the kernel's (predictable) instruction count.
//!
//! Run with: `cargo run --release --example video_analytics`

use fgqos::qos::goals::GoalTranslation;
use fgqos::{Gpu, GpuConfig, QosManager, QosSpec, QuotaScheme};
use workloads::synth;

fn main() {
    let cycles = 150_000;
    let frame_kernel = synth::frame_kernel("decode-frame", 256);
    let trainer = synth::memory_bound("train-batch", 3);

    // §3.2 goal translation: a 60 fps deadline with a 1080p frame copied
    // over PCIe each invocation. (The simulated clock is Table 1's
    // 1216 MHz; instruction count comes from the kernel model.)
    let insts_per_frame = u64::from(frame_kernel.grid_tbs()) * frame_kernel.thread_insts_per_tb();
    let translation = GoalTranslation {
        core_mhz: 1216,
        kernel_instructions: insts_per_frame,
        transfer_bytes: 1920 * 1080 * 4,
        pcie_bytes_per_us: 16_000.0, // ~16 GB/s effective PCIe 3.0 x16
        fixed_latency_us: 50.0,
    };
    let goal_ipc =
        translation.ipc_goal_for_rate(60.0).expect("60 fps is feasible after transfer overhead");
    println!(
        "frame kernel: {insts_per_frame} thread-instructions/frame, \
         {:.0} us non-kernel overhead -> IPC goal {goal_ipc:.1} for 60 fps",
        translation.overhead_us()
    );

    let mut gpu = Gpu::new(GpuConfig::paper_table1());
    let video = gpu.launch(frame_kernel);
    let batch = gpu.launch(trainer);
    let mut manager = QosManager::new(QuotaScheme::Rollover)
        .with_kernel(video, QosSpec::qos(goal_ipc))
        .with_kernel(batch, QosSpec::best_effort());
    gpu.run(cycles, &mut manager);

    let stats = gpu.stats();
    let ipc = stats.ipc(video);
    let frames = stats.kernel(video).launches_completed;
    let fps = ipc / goal_ipc * 60.0;
    println!(
        "video kernel: {ipc:.1} IPC -> ~{fps:.1} fps equivalent \
         ({frames} full frames simulated) — 60 fps {}",
        if ipc >= goal_ipc { "SUSTAINED" } else { "DROPPED" },
    );
    println!("training kernel: {:.1} IPC on the slack", stats.ipc(batch));
}
