//! Property-based round-trip and corruption drill for the FGTR trace codec.
//!
//! Mirrors the checkpoint corruption drill: arbitrary valid traces must
//! survive `to_bytes`/`from_bytes` bit-exactly, and every single-byte flip
//! or truncation of a framed trace must surface as a *typed* [`TraceError`]
//! — never a panic, never a silently different trace.

use gpu_sim::{AccessPattern, Op};
use proptest::prelude::*;
use trace::{
    from_bytes, peek_version, to_bytes, KernelTrace, TbRecord, TbShape, TraceError, TraceMeta,
    TRACE_MAGIC, TRACE_SCHEMA_VERSION,
};

/// Builds an arbitrary-but-valid trace from proptest scalars. Ops are drawn
/// from a code stream (`op_codes`); a trailing ALU keeps the stream
/// non-empty and barrier-free at the end, as the validator requires.
fn build_trace(
    seed: u64,
    grid_tbs: u32,
    iterations: u32,
    warps: u32,
    op_codes: &[u8],
    tb_entropy: &[u64],
) -> KernelTrace {
    let mut warp_ops = Vec::new();
    for &code in op_codes {
        warp_ops.push(match code % 6 {
            0 => Op::alu(1 + u16::from(code % 7), 1 + u16::from(code % 5)),
            1 => Op::sfu(2 + u16::from(code % 9), 1 + u16::from(code % 3)),
            2 => Op::mem_load(AccessPattern::tile(1024 + 64 * u64::from(code))),
            3 => Op::mem_store(AccessPattern::stream()),
            4 => Op::smem(),
            _ => Op::Bar,
        });
    }
    warp_ops.push(Op::alu(4, 2));
    let mut tbs = Vec::new();
    let mut cycle = 0u64;
    // Each entropy word packs (sm, dispatch gap, run length, resumed); gaps
    // accumulate, so records come out in (dispatch, sm, tb) order for free.
    for (i, &e) in tb_entropy.iter().enumerate() {
        cycle += e % 500;
        tbs.push(TbRecord {
            tb: i as u32,
            sm: (e >> 16) as u32 % 8,
            dispatch_cycle: cycle,
            drain_cycle: cycle + 1 + (e >> 24) % 2_000,
            resumed: (e >> 40) & 1 == 1,
        });
    }
    KernelTrace {
        meta: TraceMeta {
            name: format!("prop-{seed:x}"),
            source: "proptest".into(),
            seed,
            capture_cycles: cycle + 1_000,
            config_fingerprint: seed.rotate_left(17),
        },
        shape: TbShape {
            threads_per_tb: warps * 32,
            regs_per_thread: 16,
            smem_per_tb: 2048,
            grid_tbs,
            iterations,
            memory_intensive: seed.is_multiple_of(2),
        },
        warp_ops,
        tbs,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Encode/decode is the identity on valid traces, and re-encoding the
    /// decoded trace reproduces the same bytes.
    #[test]
    fn fgtr_round_trip_is_bit_exact(
        seed in any::<u64>(),
        grid_tbs in 1u32..512,
        iterations in 1u32..64,
        warps in 1u32..32,
        op_codes in prop::collection::vec(any::<u8>(), 0..24),
        tb_entropy in prop::collection::vec(any::<u64>(), 0..40),
    ) {
        let kt = build_trace(seed, grid_tbs, iterations, warps, &op_codes, &tb_entropy);
        prop_assert_eq!(kt.validate(), Ok(()), "constructed traces are valid");
        let bytes = to_bytes(&kt);
        prop_assert_eq!(peek_version(&bytes), Ok(TRACE_SCHEMA_VERSION));
        let back = from_bytes(&bytes).expect("strict reader accepts its own writer");
        prop_assert_eq!(&back, &kt);
        prop_assert_eq!(to_bytes(&back), bytes, "re-encode is byte-identical");
    }

    /// Any single flipped byte is rejected with a typed error: a flip inside
    /// the magic is [`TraceError::BadMagic`]; anywhere else the FNV-1a
    /// checksum catches it first.
    #[test]
    fn every_flipped_byte_is_rejected(
        seed in any::<u64>(),
        op_codes in prop::collection::vec(any::<u8>(), 0..12),
        tb_entropy in prop::collection::vec(any::<u64>(), 0..10),
        pos_salt in any::<u64>(),
        flip in 1u8..=255,
    ) {
        let kt = build_trace(seed, 8, 2, 2, &op_codes, &tb_entropy);
        let bytes = to_bytes(&kt);
        // One deterministic position per case plus a sweep stride, so the
        // whole frame gets covered across the run.
        for pos in (pos_salt as usize % bytes.len()..bytes.len()).step_by(7) {
            let mut corrupt = bytes.clone();
            corrupt[pos] ^= flip;
            let err = from_bytes(&corrupt).expect_err("flip must be detected");
            if pos < TRACE_MAGIC.len() {
                prop_assert!(
                    matches!(err, TraceError::BadMagic { .. }),
                    "magic flip at {pos} gave {err:?}"
                );
            } else {
                prop_assert!(
                    matches!(err, TraceError::ChecksumMismatch { .. }),
                    "body flip at {pos} gave {err:?}"
                );
            }
        }
    }

    /// Every truncation is rejected: below the minimum frame as
    /// [`TraceError::Truncated`], otherwise by the checksum (the stored
    /// checksum tail moved) — and never accepted.
    #[test]
    fn every_truncation_is_rejected(
        seed in any::<u64>(),
        op_codes in prop::collection::vec(any::<u8>(), 0..12),
        cut_salt in any::<u64>(),
    ) {
        let kt = build_trace(seed, 4, 1, 1, &op_codes, &[42]);
        let bytes = to_bytes(&kt);
        for cut in (cut_salt as usize % bytes.len()..bytes.len()).step_by(5) {
            let err = from_bytes(&bytes[..cut]).expect_err("truncation must be detected");
            prop_assert!(
                matches!(
                    err,
                    TraceError::Truncated { .. }
                        | TraceError::ChecksumMismatch { .. }
                        | TraceError::Malformed(_)
                ),
                "cut at {cut} gave {err:?}"
            );
        }
    }
}

/// The version check fires only on an otherwise-intact frame (checksum is
/// verified first), and `peek_version` still reads the foreign version.
#[test]
fn future_schema_version_is_rejected_with_both_versions_named() {
    let kt = build_trace(3, 4, 1, 1, &[0, 2], &[42]);
    let mut bytes = to_bytes(&kt);
    let future = TRACE_SCHEMA_VERSION + 1;
    bytes[4..8].copy_from_slice(&future.to_le_bytes());
    // Re-seal: the checksum covers the version field, so recompute it.
    let body_len = bytes.len() - 8;
    let sum = gpu_sim::snap::fnv1a(&bytes[..body_len]);
    bytes[body_len..].copy_from_slice(&sum.to_le_bytes());
    assert_eq!(peek_version(&bytes), Ok(future));
    assert_eq!(
        from_bytes(&bytes),
        Err(TraceError::VersionMismatch { found: future, expected: TRACE_SCHEMA_VERSION })
    );
}

/// A frame whose payload decodes but leaves trailing bytes is malformed:
/// the reader demands the payload be exhausted exactly.
#[test]
fn semantically_invalid_payload_is_rejected_after_decoding() {
    let mut kt = build_trace(5, 4, 1, 1, &[0], &[42]);
    kt.shape.grid_tbs = 0; // structurally decodable, semantically invalid
    let bytes = to_bytes(&kt);
    assert_eq!(from_bytes(&bytes), Err(TraceError::Invalid("empty grid")));
}
