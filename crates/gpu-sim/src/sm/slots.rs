//! Occupancy and slot accounting: TB dispatch, preemption context switches,
//! completion outboxes, and the epoch-boundary invariant audit.

use std::sync::Arc;

use crate::health::AuditKind;
use crate::kernel::KernelDesc;
use crate::observe::TraceEventKind;
use crate::preempt::SavedTb;
use crate::rng::derive_seed;
use crate::tb::{TbPhase, TbState};
use crate::types::{Cycle, KernelId, TbIndex};
use crate::warp::{WarpProgress, WarpState};
use crate::MAX_KERNELS;

use super::Sm;

impl Sm {
    /// Registers the kernel description for slot `k` (done once at launch).
    pub(crate) fn set_kernel_desc(&mut self, k: KernelId, desc: Arc<KernelDesc>) {
        self.descs[k.index()] = Some(desc);
    }

    /// Whether one more TB of `desc` fits in the remaining resources.
    pub fn can_host(&self, desc: &KernelDesc) -> bool {
        !self.free_tbs.is_empty()
            && self.free_warps.len() >= desc.warps_per_tb() as usize
            && self.used_threads + desc.threads_per_tb() <= self.max_threads
            && self.used_regs + desc.regfile_bytes_per_tb() <= self.regfile_bytes
            && self.used_smem + desc.smem_per_tb() <= self.smem_bytes
    }

    /// Maximum TBs of `desc` an (empty) SM of this configuration can hold.
    pub fn max_resident_tbs(&self, desc: &KernelDesc) -> u32 {
        let by_tbs = u32::from(self.max_tbs);
        let by_warps = u32::from(self.max_warps) / desc.warps_per_tb();
        let by_threads = self.max_threads / desc.threads_per_tb();
        let by_regs = (self.regfile_bytes / desc.regfile_bytes_per_tb().max(1)) as u32;
        let by_smem = if desc.smem_per_tb() == 0 {
            u32::MAX
        } else {
            (self.smem_bytes / desc.smem_per_tb()) as u32
        };
        by_tbs.min(by_warps).min(by_threads).min(by_regs).min(by_smem)
    }

    /// Number of TBs of kernel `k` currently resident (including loading /
    /// saving ones).
    pub fn hosted_tbs(&self, k: KernelId) -> u32 {
        u32::from(self.hosted[k.index()])
    }

    /// Dispatches one TB of kernel `k`, optionally resuming saved context.
    /// The TB's warps may issue after `load_cost` cycles.
    ///
    /// # Panics
    ///
    /// Panics if the TB does not fit (callers check [`Sm::can_host`]) or the
    /// kernel description was not registered.
    pub(crate) fn dispatch(
        &mut self,
        k: KernelId,
        tb_index: TbIndex,
        resume: Option<SavedTb>,
        now: Cycle,
        load_cost: Cycle,
    ) {
        let desc = self.descs[k.index()].as_ref().expect("kernel desc registered").clone();
        assert!(self.can_host(&desc), "dispatch without capacity on {}", self.id);
        let resumed = resume.is_some();
        let tb_slot = self.free_tbs.pop().expect("free TB slot");
        let warps_per_tb = desc.warps_per_tb() as u16;
        let mut warp_slots = Vec::with_capacity(warps_per_tb as usize);
        let mut warps_done = 0u16;
        let saved_warps = resume.as_ref().map(|s| &s.warps);
        if let Some(s) = &resume {
            assert_eq!(s.tb_index, tb_index, "resume must target the saved TB index");
            assert_eq!(s.warps.len(), warps_per_tb as usize, "saved warp count mismatch");
            self.preempt_stats.resumes += 1;
            self.preempt_stats.transfer_cycles += load_cost;
        }
        for wi in 0..warps_per_tb {
            let slot = self.free_warps.pop().expect("free warp slot");
            let warp_uid = u64::from(tb_index.0) * u64::from(warps_per_tb) + u64::from(wi);
            let mut w = WarpState {
                kernel: k,
                tb_slot,
                warp_in_tb: wi,
                warp_uid,
                pc: 0,
                rem: 0,
                iter: desc.iterations(),
                ready_at: now + load_cost,
                at_barrier: false,
                done: false,
                seq: 0,
                rng: crate::rng::SplitMix64::new(derive_seed(desc.seed(), warp_uid)),
                age: self.next_age,
            };
            self.next_age += 1;
            if let Some(saved) = saved_warps {
                let p: &WarpProgress = &saved[wi as usize];
                w.pc = p.pc;
                w.rem = p.rem;
                w.iter = p.iter;
                w.seq = p.seq;
                w.done = p.done;
                w.rng = p.rng.clone();
                if p.done {
                    warps_done += 1;
                }
            }
            self.warps[slot as usize] = Some(w);
            warp_slots.push(slot);
        }
        self.used_threads += desc.threads_per_tb();
        self.used_regs += desc.regfile_bytes_per_tb();
        self.used_smem += desc.smem_per_tb();
        self.hosted[k.index()] += 1;
        self.tbs[tb_slot as usize] = Some(TbState {
            kernel: k,
            tb_index,
            warp_slots,
            warps_done,
            barrier_arrived: 0,
            phase: TbPhase::Loading(now + load_cost),
        });
        self.transitioning.push(tb_slot);
        self.record(
            now,
            TraceEventKind::TbDispatch { kernel: k.index() as u32, tb: tb_index.0, resumed },
        );
    }

    /// Starts a partial context switch of one `k` TB (the most recently
    /// dispatched active one). Returns `false` if no active TB of `k` is
    /// resident.
    pub(crate) fn start_preempt(&mut self, k: KernelId, now: Cycle, save_cost: Cycle) -> bool {
        if self.preempt_stalled {
            return false;
        }
        let victim = self
            .tbs
            .iter()
            .enumerate()
            .filter_map(|(i, tb)| tb.as_ref().map(|t| (i, t)))
            .filter(|(_, t)| t.kernel == k && t.phase == TbPhase::Active && !t.finished())
            .map(|(i, t)| (i, t.tb_index.0))
            .max_by_key(|&(_, idx)| idx);
        let Some((slot, victim_tb)) = victim else { return false };
        let tb = self.tbs[slot].as_mut().expect("victim TB present");
        tb.phase = TbPhase::Saving(now + save_cost);
        // Warps parked at a barrier would deadlock the saved context check;
        // the barrier state is recomputed on resume, so release the arrivals.
        tb.barrier_arrived = 0;
        self.preempt_stats.saves += 1;
        self.preempt_stats.transfer_cycles += save_cost;
        self.preempt_save_hist[k.index()].record(save_cost);
        self.transitioning.push(slot as u16);
        self.record(now, TraceEventKind::PreemptStart { kernel: k.index() as u32, tb: victim_tb });
        true
    }

    /// Whether any TB is currently loading or saving context.
    pub fn context_switch_in_flight(&self) -> bool {
        self.transitioning.iter().any(|&s| {
            matches!(
                self.tbs[s as usize].as_ref().map(|t| t.phase),
                Some(TbPhase::Saving(_)) | Some(TbPhase::Loading(_))
            )
        })
    }

    pub(super) fn process_transitions(&mut self, now: Cycle) {
        let mut i = 0;
        while i < self.transitioning.len() {
            let slot = self.transitioning[i];
            let phase = self.tbs[slot as usize].as_ref().map(|t| t.phase);
            match phase {
                Some(TbPhase::Loading(until)) if now >= until => {
                    self.tbs[slot as usize].as_mut().expect("loading TB").phase = TbPhase::Active;
                    self.transitioning.swap_remove(i);
                }
                Some(TbPhase::Saving(until)) if now >= until => {
                    self.finalize_save(slot, now);
                    self.transitioning.swap_remove(i);
                }
                None => {
                    // The TB completed while transitioning bookkeeping was
                    // pending (cannot normally happen; defensive).
                    self.transitioning.swap_remove(i);
                }
                _ => i += 1,
            }
        }
    }

    fn finalize_save(&mut self, tb_slot: u16, now: Cycle) {
        let tb = self.tbs[tb_slot as usize].take().expect("saving TB present");
        let desc = self.descs[tb.kernel.index()].as_ref().expect("desc").clone();
        let mut warps = Vec::with_capacity(tb.warp_slots.len());
        for &ws in &tb.warp_slots {
            let w = self.warps[ws as usize].take().expect("warp of saving TB");
            warps.push(WarpProgress::capture(&w));
            self.free_warps.push(ws);
        }
        self.release_resources(&desc);
        self.hosted[tb.kernel.index()] -= 1;
        self.free_tbs.push(tb_slot);
        let (kernel, tb_index) = (tb.kernel, tb.tb_index);
        self.saved.push((tb.kernel, SavedTb { tb_index: tb.tb_index, warps }));
        self.record(
            now,
            TraceEventKind::PreemptComplete { kernel: kernel.index() as u32, tb: tb_index.0 },
        );
    }

    fn release_resources(&mut self, desc: &KernelDesc) {
        self.used_threads -= desc.threads_per_tb();
        self.used_regs -= desc.regfile_bytes_per_tb();
        self.used_smem -= desc.smem_per_tb();
    }

    pub(super) fn note_barrier_arrival(&mut self, tb_slot: u16, now: Cycle) {
        let tb = self.tbs[tb_slot as usize].as_mut().expect("TB at barrier");
        tb.barrier_arrived += 1;
        let live = tb.warp_slots.len() as u16 - tb.warps_done;
        if tb.barrier_arrived >= live {
            tb.barrier_arrived = 0;
            let slots = tb.warp_slots.clone();
            for ws in slots {
                if let Some(w) = self.warps[ws as usize].as_mut() {
                    if w.at_barrier {
                        w.at_barrier = false;
                        w.ready_at = w.ready_at.max(now + 1);
                    }
                }
            }
        }
    }

    pub(super) fn note_warp_retired(&mut self, tb_slot: u16, now: Cycle) {
        let finished = {
            let tb = self.tbs[tb_slot as usize].as_mut().expect("TB of retiring warp");
            tb.warps_done += 1;
            tb.finished()
        };
        if finished {
            let tb = self.tbs[tb_slot as usize].take().expect("finished TB");
            let desc = self.descs[tb.kernel.index()].as_ref().expect("desc").clone();
            for &ws in &tb.warp_slots {
                self.warps[ws as usize] = None;
                self.free_warps.push(ws);
            }
            self.release_resources(&desc);
            self.hosted[tb.kernel.index()] -= 1;
            self.free_tbs.push(tb_slot);
            self.record(
                now,
                TraceEventKind::TbDrain { kernel: tb.kernel.index() as u32, tb: tb.tb_index.0 },
            );
            self.completed.push((tb.kernel, tb.tb_index));
        }
    }

    /// Whether TB completions or finished context saves are waiting for the
    /// TB scheduler's next service pass.
    pub(crate) fn has_pending_notifications(&self) -> bool {
        !self.completed.is_empty() || !self.saved.is_empty()
    }

    /// Drains TB-completion notifications for the TB scheduler.
    pub(crate) fn drain_completed(&mut self, out: &mut Vec<(KernelId, TbIndex)>) {
        out.append(&mut self.completed);
    }

    /// Drains saved-context notifications for the TB scheduler.
    pub(crate) fn drain_saved(&mut self, out: &mut Vec<(KernelId, SavedTb)>) {
        out.append(&mut self.saved);
    }

    /// Re-derives this SM's bookkeeping from its resident TBs and checks it
    /// against the incrementally maintained state. Returns the first
    /// violated invariant. Called at epoch boundaries in audit mode.
    pub fn audit_invariants(&self) -> Result<(), (AuditKind, String)> {
        let mut threads = 0u32;
        let mut regs = 0u64;
        let mut smem = 0u64;
        let mut hosted = [0u16; MAX_KERNELS];
        let mut live_tbs = 0usize;
        for (slot, tb) in self.tbs.iter().enumerate() {
            let Some(tb) = tb.as_ref() else { continue };
            let k = tb.kernel.index();
            let Some(desc) = self.descs[k].as_ref() else {
                return Err((
                    AuditKind::SlotAccounting,
                    format!("TB slot {slot} hosts unregistered kernel {k}"),
                ));
            };
            threads += desc.threads_per_tb();
            regs += desc.regfile_bytes_per_tb();
            smem += desc.smem_per_tb();
            hosted[k] += 1;
            live_tbs += 1;
            for &ws in &tb.warp_slots {
                let ok = self.warps[ws as usize]
                    .as_ref()
                    .is_some_and(|w| w.kernel == tb.kernel && w.tb_slot == slot as u16);
                if !ok {
                    return Err((
                        AuditKind::SlotAccounting,
                        format!("TB slot {slot} claims warp slot {ws} it does not own"),
                    ));
                }
            }
        }
        if threads > self.max_threads || regs > self.regfile_bytes || smem > self.smem_bytes {
            return Err((
                AuditKind::Occupancy,
                format!(
                    "resident TBs need {threads} threads / {regs} reg bytes / {smem} smem \
                     bytes, limits are {} / {} / {}",
                    self.max_threads, self.regfile_bytes, self.smem_bytes
                ),
            ));
        }
        if threads != self.used_threads || regs != self.used_regs || smem != self.used_smem {
            return Err((
                AuditKind::Occupancy,
                format!(
                    "tracked occupancy {}t/{}r/{}s != recomputed {threads}t/{regs}r/{smem}s",
                    self.used_threads, self.used_regs, self.used_smem
                ),
            ));
        }
        for (k, &count) in hosted.iter().enumerate() {
            if count != self.hosted[k] {
                return Err((
                    AuditKind::SlotAccounting,
                    format!(
                        "kernel {k}: hosted counter {} != {count} resident TBs",
                        self.hosted[k]
                    ),
                ));
            }
        }
        if self.free_tbs.len() + live_tbs != self.max_tbs as usize {
            return Err((
                AuditKind::SlotAccounting,
                format!(
                    "{} free + {live_tbs} live TB slots != {} total",
                    self.free_tbs.len(),
                    self.max_tbs
                ),
            ));
        }
        let live_warps = self.warps.iter().filter(|w| w.is_some()).count();
        if self.free_warps.len() + live_warps != self.max_warps as usize {
            return Err((
                AuditKind::SlotAccounting,
                format!(
                    "{} free + {live_warps} live warp slots != {} total",
                    self.free_warps.len(),
                    self.max_warps
                ),
            ));
        }
        for k in 0..MAX_KERNELS {
            let expected = self.quota_credit[k] - self.quota_debit[k];
            if self.quota[k] != expected {
                return Err((
                    AuditKind::QuotaLedger,
                    format!(
                        "kernel {k}: quota {} != credits {} - debits {}",
                        self.quota[k], self.quota_credit[k], self.quota_debit[k]
                    ),
                ));
            }
        }
        Ok(())
    }
}
