//! Strongly-typed identifiers and basic quantities used across the simulator.

use std::fmt;

/// A simulation cycle count / timestamp.
pub type Cycle = u64;

/// A global memory byte address in the simulated device address space.
pub type Addr = u64;

/// Identifier of a resident kernel, dense in `0..MAX_KERNELS`.
///
/// `KernelId` indexes per-kernel arrays in hot paths, so it is a thin wrapper
/// over a small integer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct KernelId(pub(crate) u8);

impl KernelId {
    /// Creates a kernel id from a raw slot index.
    ///
    /// # Panics
    ///
    /// Panics if `idx >= crate::MAX_KERNELS`.
    pub fn new(idx: usize) -> Self {
        assert!(idx < crate::MAX_KERNELS, "kernel slot {idx} out of range");
        KernelId(idx as u8)
    }

    /// Returns the dense slot index of this kernel.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for KernelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "K{}", self.0)
    }
}

/// Identifier of a streaming multiprocessor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct SmId(pub(crate) u16);

impl SmId {
    /// Creates an SM id from an index.
    pub fn new(idx: usize) -> Self {
        SmId(idx as u16)
    }

    /// Returns the index of this SM.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for SmId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "SM{}", self.0)
    }
}

/// Index of a thread block within its kernel's grid (restarts keep counting up).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TbIndex(pub u32);

impl fmt::Display for TbIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "TB{}", self.0)
    }
}

crate::impl_snap_struct!(KernelId { 0 });

crate::impl_snap_struct!(SmId { 0 });

crate::impl_snap_struct!(TbIndex { 0 });

/// A per-kernel array sized for the maximum number of resident kernels.
///
/// Hot per-kernel state (quota counters, instruction tallies) lives in these
/// fixed arrays so the per-cycle issue loop performs no hashing or bounds
/// churn beyond a constant-size array index.
pub type PerKernel<T> = [T; crate::MAX_KERNELS];

/// Builds a `PerKernel` array by calling `f` for each slot.
pub fn per_kernel<T, F: FnMut(usize) -> T>(f: F) -> PerKernel<T> {
    std::array::from_fn(f)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kernel_id_round_trips() {
        let k = KernelId::new(2);
        assert_eq!(k.index(), 2);
        assert_eq!(k.to_string(), "K2");
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn kernel_id_rejects_out_of_range() {
        let _ = KernelId::new(crate::MAX_KERNELS);
    }

    #[test]
    fn sm_id_round_trips() {
        let s = SmId::new(15);
        assert_eq!(s.index(), 15);
        assert_eq!(s.to_string(), "SM15");
    }

    #[test]
    fn per_kernel_builder_fills_all_slots() {
        let arr: PerKernel<usize> = per_kernel(|i| i * 10);
        assert_eq!(arr[0], 0);
        assert_eq!(arr[crate::MAX_KERNELS - 1], (crate::MAX_KERNELS - 1) * 10);
    }
}
