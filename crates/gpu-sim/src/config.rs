//! Simulator configuration.
//!
//! [`GpuConfig::paper_table1`] reproduces Table 1 of the paper (the 16-SM
//! GTX-class configuration used for the main evaluation) and
//! [`GpuConfig::paper_56sm`] the 56-SM scalability configuration of §4.6.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::health::{FaultPlan, HealthConfig};
use crate::observe::TraceConfig;
use crate::warp_sched::SchedPolicy;

/// Error returned by [`GpuConfig::validate`] describing the first violated
/// constraint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidConfig(String);

impl fmt::Display for InvalidConfig {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl Error for InvalidConfig {}

/// Per-SM static resource limits and issue configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SmConfig {
    /// Register file size in bytes (Table 1: 256 KB).
    pub register_file_bytes: u64,
    /// Shared memory (scratchpad) size in bytes (Table 1: 96 KB).
    pub shared_mem_bytes: u64,
    /// Maximum resident threads (Table 1: 2048).
    pub max_threads: u32,
    /// Maximum resident thread blocks (Table 1: 32).
    pub max_tbs: u32,
    /// Number of warp schedulers, each issuing one warp instruction per cycle
    /// (Table 1: 4).
    pub warp_schedulers: u32,
    /// Warp scheduling policy (Table 1: GTO).
    pub sched_policy: SchedPolicy,
}

impl Default for SmConfig {
    fn default() -> Self {
        SmConfig {
            register_file_bytes: 256 * 1024,
            shared_mem_bytes: 96 * 1024,
            max_threads: 2048,
            max_tbs: 32,
            warp_schedulers: 4,
            sched_policy: SchedPolicy::Gto,
        }
    }
}

impl SmConfig {
    /// Maximum resident warps (`max_threads / 32`).
    pub fn max_warps(&self) -> u32 {
        self.max_threads / crate::WARP_SIZE
    }
}

/// Memory hierarchy configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MemConfig {
    /// Number of memory controllers / L2 slices / DRAM channels (Table 1: 4).
    pub num_mcs: u32,
    /// Per-SM L1 data cache size in bytes.
    pub l1_bytes: u64,
    /// L1 associativity.
    pub l1_ways: u32,
    /// Per-MC L2 slice size in bytes.
    pub l2_bytes: u64,
    /// L2 associativity.
    pub l2_ways: u32,
    /// Cache line / memory transaction size in bytes.
    pub line_bytes: u32,
    /// L1 hit latency in core cycles.
    pub l1_hit_latency: u32,
    /// Interconnect (SM ↔ MC crossbar) one-way latency in cycles.
    pub xbar_latency: u32,
    /// L2 hit latency in cycles (on top of the crossbar).
    pub l2_hit_latency: u32,
    /// DRAM access latency in cycles (row access, on top of L2 miss path).
    pub dram_latency: u32,
    /// Cycles each L2 slice needs to service one transaction (inverse L2
    /// bandwidth per slice).
    pub l2_service_cycles: u32,
    /// Cycles each DRAM channel needs to service one transaction (inverse
    /// DRAM bandwidth per channel).
    pub dram_service_cycles: u32,
    /// Maximum outstanding-miss-induced queue depth modeled per channel, in
    /// cycles of accumulated backlog; beyond this the queue saturates and
    /// further requests see the saturated delay. Keeps pathological backlogs
    /// from growing without bound.
    pub max_queue_backlog: u32,
}

impl Default for MemConfig {
    fn default() -> Self {
        MemConfig {
            num_mcs: 4,
            l1_bytes: 32 * 1024,
            l1_ways: 4,
            l2_bytes: 512 * 1024,
            l2_ways: 8,
            line_bytes: 32,
            l1_hit_latency: 28,
            xbar_latency: 8,
            l2_hit_latency: 96,
            dram_latency: 220,
            l2_service_cycles: 1,
            dram_service_cycles: 1,
            max_queue_backlog: 2_000,
        }
    }
}

/// GPUWattch-style event-energy model parameters.
///
/// Units are arbitrary energy units per event; only *relative*
/// instructions-per-Watt numbers are reported (Fig. 14), so absolute
/// calibration is unnecessary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PowerConfig {
    /// Static energy per SM per cycle while the SM hosts at least one TB.
    pub sm_static_per_cycle: f64,
    /// Idle (gated) energy per SM per cycle when the SM hosts no TB.
    pub sm_idle_per_cycle: f64,
    /// Energy per ALU thread-instruction.
    pub alu_per_thread_inst: f64,
    /// Energy per SFU thread-instruction.
    pub sfu_per_thread_inst: f64,
    /// Energy per shared-memory thread-access.
    pub smem_per_thread_access: f64,
    /// Energy per L1 access (per transaction).
    pub l1_per_access: f64,
    /// Energy per L2 access (per transaction).
    pub l2_per_access: f64,
    /// Energy per DRAM access (per transaction).
    pub dram_per_access: f64,
}

impl Default for PowerConfig {
    fn default() -> Self {
        PowerConfig {
            sm_static_per_cycle: 1.0,
            sm_idle_per_cycle: 0.3,
            alu_per_thread_inst: 0.010,
            sfu_per_thread_inst: 0.040,
            smem_per_thread_access: 0.015,
            l1_per_access: 0.20,
            l2_per_access: 0.60,
            dram_per_access: 2.50,
        }
    }
}

/// Preemption (partial context switch) cost model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PreemptConfig {
    /// Context store/load bandwidth in bytes per cycle per SM.
    ///
    /// A TB's context is its live registers plus shared memory; saving or
    /// restoring it occupies the TB's slot for `context_bytes / bandwidth`
    /// cycles (SMK reports most of this overlaps with other TBs' execution).
    pub context_bytes_per_cycle: u32,
    /// Fixed pipeline-drain cycles added to every context save.
    pub drain_cycles: u32,
}

impl Default for PreemptConfig {
    fn default() -> Self {
        PreemptConfig { context_bytes_per_cycle: 128, drain_cycles: 100 }
    }
}

/// Top-level simulator configuration.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors.
    pub num_sms: u32,
    /// Core clock in MHz — used only when converting IPC goals to wall-clock
    /// rates for reporting (Table 1: 1216 MHz).
    pub core_mhz: u32,
    /// Per-SM configuration.
    pub sm: SmConfig,
    /// Memory hierarchy configuration.
    pub mem: MemConfig,
    /// Power model parameters.
    pub power: PowerConfig,
    /// Preemption cost model.
    pub preempt: PreemptConfig,
    /// Epoch length in cycles for controller invocations (paper §4.1: 10 K).
    pub epoch_cycles: u64,
    /// Idle-warp sampling points per epoch (paper §4.1: 100).
    pub samples_per_epoch: u32,
    /// Health layer: forward-progress watchdog and epoch-boundary invariant
    /// audits. Disabled by default (zero overhead, identical behavior).
    pub health: HealthConfig,
    /// Deterministic fault-injection schedule. Empty by default.
    pub faults: FaultPlan,
    /// Idle-cycle fast-forward: when no warp on any SM can issue, the run
    /// loop jumps to the earliest event horizon instead of ticking every
    /// cycle (see DESIGN.md §3, "Fast-forward and event horizons"). Results
    /// are bit-identical to naive stepping; set `false` to force the naive
    /// per-cycle loop (the differential oracle in `tests/properties.rs`
    /// compares both paths).
    pub fast_forward: bool,
    /// Intra-machine parallel stepping (DESIGN.md §13): step the per-SM
    /// execution domains on concurrent threads within each cycle (and each
    /// fast-forward slice), synchronizing at the interconnect port-drain
    /// barrier. Results are bit-identical to serial stepping — same record
    /// hashes, event streams, counters, and snapshot blobs — because all
    /// cross-domain traffic is merged in stable SM-index order; the flag
    /// only changes wall-clock time, and is therefore excluded from config
    /// fingerprints and snapshots. Off by default.
    pub intra_parallel: bool,
    /// Flight-recorder configuration (DESIGN.md §12): event-trace level and
    /// ring capacity. Off by default; at `Off` the only simulated-path cost
    /// is one branch on a cached flag.
    pub trace: TraceConfig,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig::paper_table1()
    }
}

impl GpuConfig {
    /// The paper's main configuration (Table 1): 16 SMs, 4 MCs, GTO,
    /// 4 warp schedulers per SM.
    pub fn paper_table1() -> Self {
        GpuConfig {
            num_sms: 16,
            core_mhz: 1216,
            sm: SmConfig::default(),
            mem: MemConfig::default(),
            power: PowerConfig::default(),
            preempt: PreemptConfig::default(),
            epoch_cycles: 10_000,
            samples_per_epoch: 100,
            health: HealthConfig::default(),
            faults: FaultPlan::default(),
            fast_forward: true,
            intra_parallel: false,
            trace: TraceConfig::default(),
        }
    }

    /// The §4.6 scalability configuration: 56 SMs, each with two warp
    /// schedulers; other parameters as in Table 1.
    pub fn paper_56sm() -> Self {
        let mut cfg = GpuConfig::paper_table1();
        cfg.num_sms = 56;
        cfg.sm.warp_schedulers = 2;
        // More SMs share the same four memory channels in the paper's setup;
        // keep the memory system identical so the experiment isolates SM count.
        cfg
    }

    /// A reduced configuration for fast unit tests: 2 SMs, small caches.
    pub fn tiny() -> Self {
        let mut cfg = GpuConfig::paper_table1();
        cfg.num_sms = 2;
        cfg.mem.num_mcs = 2;
        cfg.mem.l1_bytes = 4 * 1024;
        cfg.mem.l2_bytes = 32 * 1024;
        cfg.epoch_cycles = 1_000;
        cfg.samples_per_epoch = 10;
        cfg
    }

    /// Validates internal consistency.
    ///
    /// # Errors
    ///
    /// Returns the first violated constraint as an [`InvalidConfig`].
    pub fn validate(&self) -> Result<(), InvalidConfig> {
        let fail = |msg: &str| Err(InvalidConfig(msg.to_string()));
        if self.num_sms == 0 {
            return fail("num_sms must be positive");
        }
        if self.mem.num_mcs == 0 {
            return fail("num_mcs must be positive");
        }
        if !self.mem.line_bytes.is_power_of_two() {
            return fail("line_bytes must be a power of two");
        }
        if !self.sm.max_threads.is_multiple_of(crate::WARP_SIZE) {
            return fail("max_threads must be a multiple of the warp size");
        }
        if self.sm.warp_schedulers == 0 {
            return fail("warp_schedulers must be positive");
        }
        if self.epoch_cycles == 0 {
            return fail("epoch_cycles must be positive");
        }
        if self.samples_per_epoch == 0 || u64::from(self.samples_per_epoch) > self.epoch_cycles {
            return fail("samples_per_epoch must be in 1..=epoch_cycles");
        }
        if !self.mem.l1_bytes.is_multiple_of(u64::from(self.mem.line_bytes * self.mem.l1_ways)) {
            return fail("l1_bytes must be divisible by line_bytes * l1_ways");
        }
        if !self.mem.l2_bytes.is_multiple_of(u64::from(self.mem.line_bytes * self.mem.l2_ways)) {
            return fail("l2_bytes must be divisible by line_bytes * l2_ways");
        }
        for fault in &self.faults.faults {
            if let crate::health::FaultKind::FreezeScheduler { sm } = fault.kind {
                if sm >= self.num_sms as usize {
                    return fail("fault plan freezes a nonexistent SM");
                }
            }
        }
        Ok(())
    }

    /// Stable 64-bit fingerprint of this configuration (FNV-1a over the
    /// Snap encoding). Two configurations fingerprint equal iff every
    /// snapshot-relevant field matches — including the fault plan.
    pub fn fingerprint(&self) -> u64 {
        crate::snap::fnv1a(&crate::snap::encode_to_vec(self))
    }

    /// Migration-class fingerprint: like [`GpuConfig::fingerprint`] but with
    /// the fault-injection plan erased. Two devices in the same migration
    /// class agree on every parameter that shapes machine *state* (SM count,
    /// cache geometry, epoch length, health knobs, trace config) while being
    /// free to carry different scheduled faults — exactly the condition under
    /// which a snapshot taken on one can resume on the other
    /// ([`crate::Gpu::restore_compat`]).
    pub fn compat_fingerprint(&self) -> u64 {
        let mut neutral = self.clone();
        neutral.faults = FaultPlan::none();
        crate::snap::fnv1a(&crate::snap::encode_to_vec(&neutral))
    }
}

crate::impl_snap_struct!(SmConfig {
    register_file_bytes,
    shared_mem_bytes,
    max_threads,
    max_tbs,
    warp_schedulers,
    sched_policy,
});

crate::impl_snap_struct!(MemConfig {
    num_mcs,
    l1_bytes,
    l1_ways,
    l2_bytes,
    l2_ways,
    line_bytes,
    l1_hit_latency,
    xbar_latency,
    l2_hit_latency,
    dram_latency,
    l2_service_cycles,
    dram_service_cycles,
    max_queue_backlog,
});

crate::impl_snap_struct!(PowerConfig {
    sm_static_per_cycle,
    sm_idle_per_cycle,
    alu_per_thread_inst,
    sfu_per_thread_inst,
    smem_per_thread_access,
    l1_per_access,
    l2_per_access,
    dram_per_access,
});

crate::impl_snap_struct!(PreemptConfig { context_bytes_per_cycle, drain_cycles });

// `intra_parallel` selects a stepping strategy, not machine semantics:
// serial and parallel stepping are bit-identical, so the flag is excluded
// from the snap encoding. Config fingerprints and snapshot blobs therefore
// match across stepping modes, and a checkpoint taken under one mode resumes
// cleanly under the other.
crate::impl_snap_struct!(GpuConfig {
    num_sms,
    core_mhz,
    sm,
    mem,
    power,
    preempt,
    epoch_cycles,
    samples_per_epoch,
    health,
    faults,
    fast_forward,
    trace,
} skip { intra_parallel });

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_matches_paper() {
        let cfg = GpuConfig::paper_table1();
        assert_eq!(cfg.num_sms, 16);
        assert_eq!(cfg.mem.num_mcs, 4);
        assert_eq!(cfg.core_mhz, 1216);
        assert_eq!(cfg.sm.register_file_bytes, 256 * 1024);
        assert_eq!(cfg.sm.shared_mem_bytes, 96 * 1024);
        assert_eq!(cfg.sm.max_threads, 2048);
        assert_eq!(cfg.sm.max_tbs, 32);
        assert_eq!(cfg.sm.warp_schedulers, 4);
        assert_eq!(cfg.sm.sched_policy, SchedPolicy::Gto);
        assert_eq!(cfg.epoch_cycles, 10_000);
        assert_eq!(cfg.samples_per_epoch, 100);
        cfg.validate().expect("paper config must validate");
    }

    #[test]
    fn fiftysix_sm_config() {
        let cfg = GpuConfig::paper_56sm();
        assert_eq!(cfg.num_sms, 56);
        assert_eq!(cfg.sm.warp_schedulers, 2);
        cfg.validate().expect("56-SM config must validate");
    }

    #[test]
    fn tiny_validates() {
        GpuConfig::tiny().validate().unwrap();
    }

    #[test]
    fn max_warps_derived_from_threads() {
        assert_eq!(SmConfig::default().max_warps(), 64);
    }

    #[test]
    fn validate_rejects_zero_sms() {
        let mut cfg = GpuConfig::paper_table1();
        cfg.num_sms = 0;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn validate_rejects_non_pow2_line() {
        let mut cfg = GpuConfig::paper_table1();
        cfg.mem.line_bytes = 48;
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn health_layer_is_off_by_default() {
        let cfg = GpuConfig::paper_table1();
        assert_eq!(cfg.health, HealthConfig::default());
        assert!(cfg.faults.is_empty());
    }

    #[test]
    fn validate_rejects_fault_on_missing_sm() {
        use crate::health::FaultKind;
        let mut cfg = GpuConfig::tiny();
        cfg.faults = FaultPlan::one(100, FaultKind::FreezeScheduler { sm: 99 });
        assert!(cfg.validate().is_err());
        cfg.faults = FaultPlan::one(100, FaultKind::FreezeScheduler { sm: 1 });
        cfg.validate().expect("sm 1 exists in the tiny config");
    }

    #[test]
    fn validate_rejects_bad_sampling() {
        let mut cfg = GpuConfig::paper_table1();
        cfg.samples_per_epoch = 0;
        assert!(cfg.validate().is_err());
        cfg.samples_per_epoch = 20_000;
        assert!(cfg.validate().is_err());
    }
}
