//! Sampling and read-only introspection: idle-warp/scoreboard censuses, the
//! flight-recorder ring, and every statistics accessor the counter registry,
//! power model, controllers, and harness read from an SM.

use crate::health::WarpStallCounts;
use crate::observe::EventRing;
use crate::preempt::PreemptStats;
use crate::types::{per_kernel, Cycle, KernelId};

use super::{Sm, SmKernelCounters};

impl Sm {
    /// Records one idle-warp sample (call right after [`Sm::tick`]).
    ///
    /// A warp is *idle* if it could issue (ready operands, active TB) but was
    /// not selected this cycle — including warps throttled by quota, which
    /// occupy static resources without contributing progress (§3.6).
    pub(crate) fn sample_idle_warps(&mut self, now: Cycle) {
        self.idle_samples += 1;
        let t = &self.warps;
        for wi in 0..t.words() {
            // Live warps: occupied, not retired, not parked at a barrier.
            // Both censuses accumulate order-independent per-kernel sums, so
            // scanning set bits is equivalent to the old slot-order walk.
            let mut bits = t.occupied[wi] & !t.done[wi] & !t.at_barrier[wi];
            while bits != 0 {
                let slot = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let k = t.kernel[slot].index();
                if t.ready_at[slot] > now {
                    // Scoreboard census rides on the same sampling cadence:
                    // live warps waiting on operand latencies accumulate
                    // into the per-kernel scoreboard-wait counter.
                    self.scoreboard_waits[k] += 1;
                } else if self.tbs.issuable(t.tb_slot[slot], now) {
                    self.idle_warp_acc[k] += 1;
                }
            }
        }
    }

    /// Mean idle warps of kernel `k` since the last
    /// [`Sm::reset_idle_sampling`] call.
    pub fn idle_warp_avg(&self, k: KernelId) -> f64 {
        if self.idle_samples == 0 {
            0.0
        } else {
            self.idle_warp_acc[k.index()] as f64 / self.idle_samples as f64
        }
    }

    /// Clears idle-warp sampling accumulators (call at epoch boundaries).
    pub fn reset_idle_sampling(&mut self) {
        self.idle_warp_acc = per_kernel(|_| 0);
        self.idle_samples = 0;
    }

    /// Cumulative issue counters for kernel `k`.
    pub fn counters(&self, k: KernelId) -> SmKernelCounters {
        self.counters[k.index()]
    }

    /// Cycles in which the SM hosted at least one thread.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Issue slots offered while busy (busy cycles × schedulers).
    pub fn issue_slots(&self) -> u64 {
        self.issue_slots
    }

    /// Cycle-slots in which an otherwise-issuable warp of `k` was denied by
    /// quota admission (issue/stall telemetry for the counter registry).
    pub fn quota_blocked_cycles(&self, k: KernelId) -> u64 {
        self.quota_blocked[k.index()]
    }

    /// Times kernel `k`'s quota counter crossed from positive into
    /// exhaustion on this SM.
    pub fn quota_exhaustions(&self, k: KernelId) -> u64 {
        self.quota_exhaustions[k.index()]
    }

    /// Sampled count of kernel `k` warps waiting on operand scoreboards
    /// (same cadence as idle-warp sampling).
    pub fn scoreboard_wait_samples(&self, k: KernelId) -> u64 {
        self.scoreboard_waits[k.index()]
    }

    /// This SM's flight-recorder ring.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Fraction of issue slots used while busy.
    pub fn issue_utilization(&self) -> f64 {
        if self.issue_slots == 0 {
            0.0
        } else {
            self.issued_total as f64 / self.issue_slots as f64
        }
    }

    /// Warp instructions issued by this SM since construction.
    pub fn issued_total(&self) -> u64 {
        self.issued_total
    }

    /// TBs resident on this SM (all kernels, including transitioning ones).
    pub fn resident_tbs(&self) -> u32 {
        (self.max_tbs as usize - self.tbs.free_slots()) as u32
    }

    /// Census of resident warps by stall state at cycle `now`.
    pub fn warp_stall_counts(&self, now: Cycle) -> WarpStallCounts {
        let mut counts = WarpStallCounts::default();
        let t = &self.warps;
        for wi in 0..t.words() {
            counts.done += (t.occupied[wi] & t.done[wi]).count_ones();
            counts.at_barrier += (t.occupied[wi] & !t.done[wi] & t.at_barrier[wi]).count_ones();
            let mut bits = t.occupied[wi] & !t.done[wi] & !t.at_barrier[wi];
            while bits != 0 {
                let slot = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                if t.ready_at[slot] > now {
                    counts.waiting += 1;
                } else {
                    counts.ready += 1;
                }
            }
        }
        counts
    }

    /// Per-kernel ALU thread instructions (power model input).
    pub fn alu_thread_insts(&self, k: KernelId) -> u64 {
        self.alu_thread_insts[k.index()]
    }

    /// Per-kernel SFU thread instructions (power model input).
    pub fn sfu_thread_insts(&self, k: KernelId) -> u64 {
        self.sfu_thread_insts[k.index()]
    }

    /// Per-kernel shared-memory thread accesses (power model input).
    pub fn smem_accesses(&self, k: KernelId) -> u64 {
        self.smem_accesses[k.index()]
    }

    /// L1 hit/miss statistics.
    pub fn l1_stats(&self) -> crate::cache::CacheStats {
        self.l1.stats()
    }

    /// Preemption statistics.
    pub fn preempt_stats(&self) -> PreemptStats {
        self.preempt_stats
    }

    /// Per-kernel preemption-save latency histogram (context-save cost in
    /// cycles of each save started on this SM).
    pub fn preempt_save_hist(&self, k: KernelId) -> &crate::telemetry::LatencyHistogram {
        &self.preempt_save_hist[k.index()]
    }

    /// Number of resident threads.
    pub fn used_threads(&self) -> u32 {
        self.used_threads
    }

    /// Free thread capacity.
    pub fn free_threads(&self) -> u32 {
        self.max_threads - self.used_threads
    }

    /// Free register-file bytes.
    pub fn free_regs(&self) -> u64 {
        self.regfile_bytes - self.used_regs
    }

    /// Free shared-memory bytes.
    pub fn free_smem(&self) -> u64 {
        self.smem_bytes - self.used_smem
    }

    /// Free warp slots.
    pub fn free_warp_slots(&self) -> u32 {
        self.warps.free_slots() as u32
    }

    /// Free TB slots.
    pub fn free_tb_slots(&self) -> u32 {
        self.tbs.free_slots() as u32
    }

    /// Whether this SM's interconnect port holds in-flight traffic. Always
    /// `false` outside the tick→drain window of a single cycle; exposed so
    /// tests can assert the invariant that snapshots rely on.
    pub fn icn_in_flight(&self) -> bool {
        !self.icn.is_empty()
    }
}
