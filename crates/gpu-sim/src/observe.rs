//! Observability: trace levels, the cycle-level event flight recorder, and
//! the unified counter registry (DESIGN.md §12).
//!
//! Three pieces, all snapshot-integrated so checkpoint/restore round-trips
//! them bit-exactly:
//!
//! * [`TraceConfig`] — a per-machine trace level carried on
//!   [`GpuConfig`](crate::GpuConfig). At [`TraceLevel::Off`] (the default)
//!   the only cost on the simulated path is a single branch on a cached
//!   `bool`; the `fastforward` bench holds that overhead to ≤2%.
//! * [`TraceEvent`] / [`EventRing`] — a bounded flight recorder of typed,
//!   cycle-stamped events (quota exhaustion, preemption start/complete, TB
//!   dispatch/drain, epoch boundaries, idle transitions, fault injections).
//!   Each SM owns a ring and the machine owns one for global events; the
//!   merged tail is embedded into [`HealthReport`](crate::HealthReport) so a
//!   watchdog abort carries the timeline that led to it.
//! * [`CounterEntry`] — one row of the enumerable counter registry that
//!   [`Gpu::counter_registry`](crate::Gpu::counter_registry) assembles from
//!   the SM pipeline, memory hierarchy, and preemption engine. Counters are
//!   monotonic; gauges are instantaneous readings.
//!
//! Events may only be recorded on *simulated* cycles: the idle fast-forward
//! (DESIGN.md §3.1) skips windows in which the machine provably does
//! nothing, and the differential proptests hold a traced fast-forward run
//! bit-identical to a traced naive run — ring contents included.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::health::FaultKind;
use crate::snap::{Snap, SnapError, SnapReader};
use crate::types::Cycle;

/// How much event recording the machine performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum TraceLevel {
    /// No events are recorded; the flight-recorder rings stay empty. The
    /// per-cycle cost is one branch on a cached flag.
    #[default]
    Off,
    /// Typed events are recorded into the bounded per-SM and machine rings.
    Events,
}

crate::impl_snap_enum!(TraceLevel { Off = 0, Events = 1 });

impl TraceLevel {
    /// Whether event recording is enabled.
    pub fn is_on(self) -> bool {
        self != TraceLevel::Off
    }
}

/// Flight-recorder configuration, carried on [`GpuConfig`](crate::GpuConfig).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceConfig {
    /// Event-recording level.
    pub level: TraceLevel,
    /// Capacity of each event ring (one per SM plus one machine-level).
    /// Older events are overwritten once a ring is full.
    pub ring_capacity: u32,
}

impl Default for TraceConfig {
    fn default() -> Self {
        TraceConfig { level: TraceLevel::Off, ring_capacity: 256 }
    }
}

crate::impl_snap_struct!(TraceConfig { level, ring_capacity });

/// The typed payload of a flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEventKind {
    /// A kernel's quota balance crossed from positive to exhausted on the
    /// debit that issued its last covered instruction.
    QuotaExhausted {
        /// Kernel slot whose quota ran out.
        kernel: u32,
    },
    /// A TB context save began (the preemption engine picked a victim).
    PreemptStart {
        /// Kernel slot owning the victim TB.
        kernel: u32,
        /// Grid index of the victim TB.
        tb: u32,
    },
    /// A TB context save finished; the TB's state left the SM.
    PreemptComplete {
        /// Kernel slot owning the saved TB.
        kernel: u32,
        /// Grid index of the saved TB.
        tb: u32,
    },
    /// A TB was dispatched (fresh, or resumed from a saved context).
    TbDispatch {
        /// Kernel slot of the dispatched TB.
        kernel: u32,
        /// Grid index of the dispatched TB.
        tb: u32,
        /// Whether the dispatch restored a previously saved context.
        resumed: bool,
    },
    /// A TB retired its last warp and drained from the SM.
    TbDrain {
        /// Kernel slot of the drained TB.
        kernel: u32,
        /// Grid index of the drained TB.
        tb: u32,
    },
    /// The machine crossed an epoch boundary (controller invocation point).
    EpochBoundary {
        /// Index of the epoch that just finished.
        epoch: u64,
    },
    /// The epoch that just finished issued no thread instructions at all —
    /// the watchdog-relevant idle transition into a stalled window.
    IdleStart,
    /// The epoch that just finished issued instructions again after one or
    /// more fully idle epochs.
    IdleEnd,
    /// A configured [`FaultPlan`](crate::FaultPlan) entry fired.
    FaultInjected {
        /// The injected fault.
        fault: FaultKind,
    },
}

impl TraceEventKind {
    /// Stable, machine-readable name (used as the Perfetto instant name).
    pub fn name(&self) -> &'static str {
        match self {
            TraceEventKind::QuotaExhausted { .. } => "quota_exhausted",
            TraceEventKind::PreemptStart { .. } => "preempt_start",
            TraceEventKind::PreemptComplete { .. } => "preempt_complete",
            TraceEventKind::TbDispatch { .. } => "tb_dispatch",
            TraceEventKind::TbDrain { .. } => "tb_drain",
            TraceEventKind::EpochBoundary { .. } => "epoch_boundary",
            TraceEventKind::IdleStart => "idle_start",
            TraceEventKind::IdleEnd => "idle_end",
            TraceEventKind::FaultInjected { .. } => "fault_injected",
        }
    }
}

impl fmt::Display for TraceEventKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEventKind::QuotaExhausted { kernel } => {
                write!(f, "quota exhausted: kernel {kernel}")
            }
            TraceEventKind::PreemptStart { kernel, tb } => {
                write!(f, "preempt save start: kernel {kernel} tb {tb}")
            }
            TraceEventKind::PreemptComplete { kernel, tb } => {
                write!(f, "preempt save complete: kernel {kernel} tb {tb}")
            }
            TraceEventKind::TbDispatch { kernel, tb, resumed: false } => {
                write!(f, "tb dispatch: kernel {kernel} tb {tb}")
            }
            TraceEventKind::TbDispatch { kernel, tb, resumed: true } => {
                write!(f, "tb dispatch (resume): kernel {kernel} tb {tb}")
            }
            TraceEventKind::TbDrain { kernel, tb } => {
                write!(f, "tb drain: kernel {kernel} tb {tb}")
            }
            TraceEventKind::EpochBoundary { epoch } => {
                write!(f, "epoch boundary: epoch {epoch} finished")
            }
            TraceEventKind::IdleStart => {
                write!(f, "idle window start: epoch issued no instructions")
            }
            TraceEventKind::IdleEnd => write!(f, "idle window end: progress resumed"),
            TraceEventKind::FaultInjected { fault } => {
                write!(f, "fault injected: {fault:?}")
            }
        }
    }
}

impl Snap for TraceEventKind {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            TraceEventKind::QuotaExhausted { kernel } => {
                out.push(0);
                kernel.encode(out);
            }
            TraceEventKind::PreemptStart { kernel, tb } => {
                out.push(1);
                kernel.encode(out);
                tb.encode(out);
            }
            TraceEventKind::PreemptComplete { kernel, tb } => {
                out.push(2);
                kernel.encode(out);
                tb.encode(out);
            }
            TraceEventKind::TbDispatch { kernel, tb, resumed } => {
                out.push(3);
                kernel.encode(out);
                tb.encode(out);
                resumed.encode(out);
            }
            TraceEventKind::TbDrain { kernel, tb } => {
                out.push(4);
                kernel.encode(out);
                tb.encode(out);
            }
            TraceEventKind::EpochBoundary { epoch } => {
                out.push(5);
                epoch.encode(out);
            }
            TraceEventKind::IdleStart => out.push(6),
            TraceEventKind::IdleEnd => out.push(7),
            TraceEventKind::FaultInjected { fault } => {
                out.push(8);
                fault.encode(out);
            }
        }
    }

    fn decode(r: &mut SnapReader<'_>) -> Result<Self, SnapError> {
        Ok(match u8::decode(r)? {
            0 => TraceEventKind::QuotaExhausted { kernel: u32::decode(r)? },
            1 => TraceEventKind::PreemptStart { kernel: u32::decode(r)?, tb: u32::decode(r)? },
            2 => TraceEventKind::PreemptComplete { kernel: u32::decode(r)?, tb: u32::decode(r)? },
            3 => TraceEventKind::TbDispatch {
                kernel: u32::decode(r)?,
                tb: u32::decode(r)?,
                resumed: bool::decode(r)?,
            },
            4 => TraceEventKind::TbDrain { kernel: u32::decode(r)?, tb: u32::decode(r)? },
            5 => TraceEventKind::EpochBoundary { epoch: u64::decode(r)? },
            6 => TraceEventKind::IdleStart,
            7 => TraceEventKind::IdleEnd,
            8 => TraceEventKind::FaultInjected { fault: FaultKind::decode(r)? },
            _ => return Err(SnapError::Invalid("TraceEventKind")),
        })
    }
}

/// One cycle-stamped flight-recorder event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Cycle at which the event occurred.
    pub cycle: Cycle,
    /// SM that recorded the event, or `None` for machine-level events
    /// (epoch boundaries, idle transitions, fault injections).
    pub sm: Option<u32>,
    /// What happened.
    pub kind: TraceEventKind,
}

crate::impl_snap_struct!(TraceEvent { cycle, sm, kind });

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cycle {:>8}  ", self.cycle)?;
        match self.sm {
            Some(sm) => write!(f, "sm {sm:>2}   ")?,
            None => write!(f, "machine ")?,
        }
        write!(f, "{}", self.kind)
    }
}

/// A bounded, overwrite-oldest ring of [`TraceEvent`]s.
///
/// A zero-capacity ring drops everything — that (plus the callers' cached
/// `trace_on` flag) is what makes [`TraceLevel::Off`] free. The ring counts
/// how many events it has discarded (overwritten or dropped at zero
/// capacity), so lossless consumers — the FGTR trace capture in particular —
/// can tell a complete recording from a wrapped one.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct EventRing {
    cap: u32,
    start: u32,
    dropped: u64,
    events: Vec<TraceEvent>,
}

crate::impl_snap_struct!(EventRing { cap, start, dropped, events });

impl EventRing {
    /// Creates an empty ring holding at most `cap` events.
    pub fn new(cap: u32) -> Self {
        EventRing { cap, start: 0, dropped: 0, events: Vec::new() }
    }

    /// Ring capacity.
    pub fn capacity(&self) -> u32 {
        self.cap
    }

    /// Number of events currently held.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the ring holds no events.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of events discarded so far (overwritten once the ring was
    /// full, or dropped outright at zero capacity). Zero means [`iter`]
    /// returns every event ever pushed.
    ///
    /// [`iter`]: EventRing::iter
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Records an event, overwriting the oldest once full.
    pub fn push(&mut self, event: TraceEvent) {
        if self.cap == 0 {
            self.dropped += 1;
            return;
        }
        if self.events.len() < self.cap as usize {
            self.events.push(event);
        } else {
            self.events[self.start as usize] = event;
            self.start = (self.start + 1) % self.cap;
            self.dropped += 1;
        }
    }

    /// Events in recording order, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        let split = (self.start as usize).min(self.events.len());
        self.events[split..].iter().chain(self.events[..split].iter())
    }
}

/// One completed TB execution reconstructed from the flight recorder — the
/// unit of the FGTR trace capture (DESIGN.md §15).
///
/// Built by [`Gpu::tb_lifecycles`](crate::Gpu::tb_lifecycles) from paired
/// [`TraceEventKind::TbDispatch`] / [`TraceEventKind::TbDrain`] events in the
/// per-SM rings. TBs still resident when the recording ends have no drain
/// event and are not reported.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbLifecycle {
    /// Grid index of the TB.
    pub tb: u32,
    /// SM the TB executed (and drained) on.
    pub sm: u32,
    /// Cycle the TB was dispatched onto the SM.
    pub dispatch_cycle: Cycle,
    /// Cycle the TB retired its last warp and drained.
    pub drain_cycle: Cycle,
    /// Whether the dispatch restored a previously saved context.
    pub resumed: bool,
}

/// Why a TB-lifecycle extraction could not be trusted.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TbLogError {
    /// An event ring wrapped during the recording, so dispatch/drain pairs
    /// may be missing. Re-record with a larger
    /// [`TraceConfig::ring_capacity`].
    RingOverflow {
        /// SM whose ring overflowed.
        sm: u32,
        /// Events the ring discarded.
        dropped: u64,
    },
    /// A drain event arrived for a TB with no open dispatch — recording
    /// started mid-flight or the ring lost the dispatch.
    UnmatchedDrain {
        /// SM that recorded the orphan drain.
        sm: u32,
        /// Grid index of the drained TB.
        tb: u32,
    },
}

impl fmt::Display for TbLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TbLogError::RingOverflow { sm, dropped } => write!(
                f,
                "event ring of sm {sm} discarded {dropped} events; \
                 raise TraceConfig::ring_capacity for lossless capture"
            ),
            TbLogError::UnmatchedDrain { sm, tb } => {
                write!(f, "sm {sm} recorded a drain for tb {tb} without a dispatch")
            }
        }
    }
}

impl std::error::Error for TbLogError {}

/// Whether a registry entry accumulates or reads instantaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterKind {
    /// Monotonically non-decreasing over a run.
    Counter,
    /// An instantaneous reading (occupancy, queue depth, balance).
    Gauge,
}

/// What a registry entry is scoped to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CounterScope {
    /// Whole-machine.
    Machine,
    /// Per resident kernel slot.
    Kernel(usize),
    /// Per SM.
    Sm(usize),
    /// Per memory channel (L2 slice / DRAM queue index).
    Channel(usize),
    /// Per fleet tenant (cluster-level serving metrics).
    Tenant(usize),
    /// Per fleet device (one simulated GPU in a cluster).
    Device(usize),
}

impl fmt::Display for CounterScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CounterScope::Machine => write!(f, "machine"),
            CounterScope::Kernel(k) => write!(f, "kernel[{k}]"),
            CounterScope::Sm(s) => write!(f, "sm[{s}]"),
            CounterScope::Channel(c) => write!(f, "chan[{c}]"),
            CounterScope::Tenant(t) => write!(f, "tenant[{t}]"),
            CounterScope::Device(d) => write!(f, "device[{d}]"),
        }
    }
}

/// One row of the enumerable counter registry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CounterEntry {
    /// Stable counter name, unique within its scope.
    pub name: &'static str,
    /// What the value is scoped to.
    pub scope: CounterScope,
    /// Counter or gauge.
    pub kind: CounterKind,
    /// The value. Signed because quota balances can legitimately go
    /// negative (overdraft on the final covered debit).
    pub value: i64,
}

impl fmt::Display for CounterEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} = {}", self.scope, self.name, self.value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snap::{decode_from_slice, encode_to_vec};

    fn ev(cycle: Cycle) -> TraceEvent {
        TraceEvent {
            cycle,
            sm: Some(1),
            kind: TraceEventKind::TbDispatch { kernel: 0, tb: cycle as u32, resumed: false },
        }
    }

    #[test]
    fn ring_preserves_order_and_overwrites_oldest() {
        let mut ring = EventRing::new(3);
        assert!(ring.is_empty());
        for c in 0..5 {
            ring.push(ev(c));
        }
        let cycles: Vec<Cycle> = ring.iter().map(|e| e.cycle).collect();
        assert_eq!(cycles, vec![2, 3, 4], "the newest `cap` events survive, in order");
        assert_eq!(ring.len(), 3);
        assert_eq!(ring.dropped(), 2, "two events were overwritten");
    }

    #[test]
    fn zero_capacity_ring_drops_everything() {
        let mut ring = EventRing::new(0);
        ring.push(ev(1));
        assert!(ring.is_empty());
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn unwrapped_ring_reports_zero_dropped() {
        let mut ring = EventRing::new(8);
        for c in 0..8 {
            ring.push(ev(c));
        }
        assert_eq!(ring.dropped(), 0, "filling to capacity discards nothing");
        ring.push(ev(8));
        assert_eq!(ring.dropped(), 1);
    }

    #[test]
    fn ring_round_trips_through_the_codec_mid_wrap() {
        let mut ring = EventRing::new(4);
        for c in 0..7 {
            ring.push(ev(c));
        }
        let back: EventRing = decode_from_slice(&encode_to_vec(&ring)).expect("codec");
        assert_eq!(back, ring);
        let a: Vec<&TraceEvent> = ring.iter().collect();
        let b: Vec<&TraceEvent> = back.iter().collect();
        assert_eq!(a, b, "iteration order survives the round trip");
    }

    #[test]
    fn every_event_kind_round_trips() {
        let kinds = [
            TraceEventKind::QuotaExhausted { kernel: 3 },
            TraceEventKind::PreemptStart { kernel: 1, tb: 17 },
            TraceEventKind::PreemptComplete { kernel: 1, tb: 17 },
            TraceEventKind::TbDispatch { kernel: 0, tb: 2, resumed: true },
            TraceEventKind::TbDrain { kernel: 2, tb: 40 },
            TraceEventKind::EpochBoundary { epoch: 12 },
            TraceEventKind::IdleStart,
            TraceEventKind::IdleEnd,
            TraceEventKind::FaultInjected { fault: FaultKind::StarveQuota },
            TraceEventKind::FaultInjected { fault: FaultKind::DeviceLoss },
            TraceEventKind::FaultInjected { fault: FaultKind::DeviceWedge },
        ];
        for kind in kinds {
            let event = TraceEvent { cycle: 999, sm: None, kind };
            let back: TraceEvent = decode_from_slice(&encode_to_vec(&event)).expect("codec");
            assert_eq!(back, event);
            assert!(!kind.name().is_empty());
            assert!(!format!("{event}").is_empty());
        }
    }

    #[test]
    fn trace_config_defaults_off() {
        let cfg = TraceConfig::default();
        assert_eq!(cfg.level, TraceLevel::Off);
        assert!(!cfg.level.is_on());
        assert!(TraceLevel::Events.is_on());
        let back: TraceConfig = decode_from_slice(&encode_to_vec(&cfg)).expect("codec");
        assert_eq!(back, cfg);
    }
}
