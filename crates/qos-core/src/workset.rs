//! Working-set estimation from observed kernel memory footprints.
//!
//! The fleet layer admits and places tenants by **measured** device-memory
//! demand, not by their declared reservations: every time a request's kernel
//! retires, the device's unified counter registry (DESIGN.md §12) yields the
//! kernel's DRAM traffic, and [`kernel_footprint_bytes`] converts it into a
//! footprint sample — distinct cache lines brought on chip, `dram_accesses ×
//! line_bytes`. [`WorkingSetTracker`] folds those samples into a per-tenant
//! exponential moving average that starts at the tenant's declared
//! `mem_bytes` (the only information available before the first completion)
//! and thereafter tracks what the tenant's kernels actually touch.
//!
//! Everything is integer arithmetic so fleet snapshots and resumed runs stay
//! bit-identical.

use gpu_sim::observe::{CounterEntry, CounterScope};

/// Footprint sample for kernel slot `kernel` out of a device counter
/// registry: DRAM-line fills × line size, a proxy for the distinct lines the
/// kernel touched. Returns `None` when the registry has no
/// `dram_accesses` row for that slot (e.g. the slot was never launched).
pub fn kernel_footprint_bytes(
    registry: &[CounterEntry],
    kernel: usize,
    line_bytes: u32,
) -> Option<u64> {
    registry
        .iter()
        .find(|e| e.name == "dram_accesses" && e.scope == CounterScope::Kernel(kernel))
        .map(|e| (e.value.max(0) as u64).saturating_mul(u64::from(line_bytes)))
}

/// Integer exponential moving average of a tenant's device-memory working
/// set, in bytes.
///
/// The estimate starts at the tenant's declared reservation and moves a
/// quarter of the way toward each new sample (`est' = (3·est + sample) / 4`)
/// — heavy enough smoothing that one anomalous kernel instance cannot swing
/// admission, light enough that a mis-declared tenant converges within a few
/// completions. A floor of one cache line keeps a tenant whose kernels hit
/// entirely in cache from estimating to zero and being packed infinitely.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkingSetTracker {
    estimate_bytes: u64,
    floor_bytes: u64,
    samples: u64,
}

gpu_sim::impl_snap_struct!(WorkingSetTracker { estimate_bytes, floor_bytes, samples });

impl WorkingSetTracker {
    /// A tracker seeded with the tenant's declared reservation.
    pub fn new(declared_bytes: u64, floor_bytes: u64) -> Self {
        WorkingSetTracker {
            estimate_bytes: declared_bytes.max(floor_bytes),
            floor_bytes,
            samples: 0,
        }
    }

    /// Folds one footprint sample into the estimate.
    pub fn observe(&mut self, sample_bytes: u64) {
        self.samples += 1;
        let blended = (3 * self.estimate_bytes + sample_bytes) / 4;
        self.estimate_bytes = blended.max(self.floor_bytes);
    }

    /// Current working-set estimate in bytes.
    pub fn estimate(&self) -> u64 {
        self.estimate_bytes
    }

    /// Number of samples folded in so far (0 ⇒ the estimate is still the
    /// declared reservation).
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::observe::CounterKind;

    fn entry(name: &'static str, scope: CounterScope, value: i64) -> CounterEntry {
        CounterEntry { name, scope, kind: CounterKind::Counter, value }
    }

    #[test]
    fn footprint_reads_the_right_kernel_row() {
        let registry = vec![
            entry("dram_accesses", CounterScope::Machine, 999),
            entry("l2_accesses", CounterScope::Kernel(0), 500),
            entry("dram_accesses", CounterScope::Kernel(0), 100),
            entry("dram_accesses", CounterScope::Kernel(1), 7),
        ];
        assert_eq!(kernel_footprint_bytes(&registry, 0, 32), Some(3_200));
        assert_eq!(kernel_footprint_bytes(&registry, 1, 32), Some(224));
        assert_eq!(kernel_footprint_bytes(&registry, 2, 32), None);
    }

    #[test]
    fn tracker_converges_toward_samples_and_respects_floor() {
        let mut ws = WorkingSetTracker::new(1 << 20, 32);
        assert_eq!(ws.estimate(), 1 << 20);
        for _ in 0..40 {
            ws.observe(4_096);
        }
        assert!(ws.estimate() < 8 * 1024, "EWMA must converge: {}", ws.estimate());
        assert!(ws.estimate() >= 4_096 || ws.estimate() >= 32);
        assert_eq!(ws.samples(), 40);

        let mut tiny = WorkingSetTracker::new(0, 32);
        tiny.observe(0);
        assert_eq!(tiny.estimate(), 32, "floor keeps cache-resident tenants nonzero");
    }

    #[test]
    fn tracker_snap_round_trips() {
        let mut ws = WorkingSetTracker::new(12_345, 64);
        ws.observe(777);
        ws.observe(100_000);
        let bytes = gpu_sim::snap::encode_to_vec(&ws);
        let mut r = gpu_sim::snap::SnapReader::new(&bytes);
        let back = <WorkingSetTracker as gpu_sim::Snap>::decode(&mut r).expect("round trip");
        assert_eq!(back, ws);
    }
}
