//! The SM front end: per-cycle scheduler gather/choose/issue, the
//! work-conserving scavenger, interconnect-port traffic, and the
//! fast-forward horizon protocol.
//!
//! Ready-warp selection is a branchless trailing-zeros scan over the warp
//! table's packed bitmasks: one live-candidate word set is computed per tick
//! (`occupied & !done & !at_barrier & tb_active`), then each scheduler scans
//! `live & stride_mask[sid]`, visiting exactly the slots the old strided
//! `Option`-walk visited, in the same increasing-slot order — which is what
//! keeps the mutating `quota_allows` refill rules firing in the original
//! sequence (DESIGN.md §18).

use crate::icn::{self, IcnRequest, IcnResponse};
use crate::kernel::{KernelDesc, MemSpace, Op};
use crate::memsys::MemSystem;
use crate::observe::TraceEventKind;
use crate::types::{per_kernel, Cycle, PerKernel};
use crate::warp_sched::SchedPolicy;
use crate::MAX_KERNELS;

use super::warp_table::mask_set;
use super::Sm;

/// Duty cycle of the `issue_select` span sampler: ticks whose cycle number
/// is a multiple of this power of two are timed, and the measured time is
/// scaled back up by the same factor. Timing every tick would cost several
/// `Instant::now` syscalls per SM-tick — more than the span being measured —
/// so the profiler samples instead; cycle-number selection keeps the choice
/// deterministic and workload-independent.
const SEL_SAMPLE_PERIOD: u64 = 64;

/// Stack-accumulator bound of the fused dense-path gather: scheduler counts
/// up to this (power-of-two) size compute all picks in one pass over the
/// issuable words. Larger or non-power-of-two geometries fall back to the
/// per-scheduler stripe scans (the fused path wants `slot & (n-1)` for the
/// stripe-owner computation, not a division per candidate).
const MAX_SCHEDS_FUSED: usize = 8;

/// Reads the CPU timestamp counter — roughly an order of magnitude cheaper
/// than `Instant::now`, which matters because a sampled span of ~100 ns
/// would otherwise be mostly clock-read cost (then multiplied back up by
/// [`SEL_SAMPLE_PERIOD`]). Falls back to `Instant` off x86_64.
#[inline]
fn sel_clock() -> u64 {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: RDTSC is unprivileged and side-effect free.
        unsafe { std::arch::x86_64::_rdtsc() }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        use std::time::Instant;
        static EPOCH: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
        EPOCH.get_or_init(Instant::now).elapsed().as_nanos() as u64
    }
}

/// Nanoseconds per [`sel_clock`] unit, calibrated once per process against
/// the monotonic clock (a ~200 µs spin, paid only on the first sampled tick
/// of a profiling run).
fn sel_ns_per_unit() -> f64 {
    static RATE: std::sync::OnceLock<f64> = std::sync::OnceLock::new();
    *RATE.get_or_init(|| {
        let t0 = std::time::Instant::now();
        let c0 = sel_clock();
        let mut spin = 0u64;
        while t0.elapsed().as_micros() < 200 {
            spin = spin.wrapping_add(1);
        }
        std::hint::black_box(spin);
        let units = sel_clock().wrapping_sub(c0).max(1);
        t0.elapsed().as_nanos() as f64 / units as f64
    })
}

/// Pausable timestamp-counter accumulator for the `issue_select` profiling
/// span. All methods are no-ops when profiling is off, so the hot path pays
/// one predictable branch per call site.
struct SelTimer {
    on: bool,
    units: u64,
    since: Option<u64>,
}

impl SelTimer {
    fn new(on: bool) -> Self {
        SelTimer { on, units: 0, since: None }
    }

    #[inline]
    fn resume(&mut self) {
        if self.on {
            self.since = Some(sel_clock());
        }
    }

    #[inline]
    fn pause(&mut self) {
        if let Some(t) = self.since.take() {
            self.units += sel_clock().wrapping_sub(t);
        }
    }

    /// The accumulated span in nanoseconds (calibrates on first use).
    fn nanos(&self) -> u64 {
        if self.units == 0 {
            return 0;
        }
        (self.units as f64 * sel_ns_per_unit()) as u64
    }
}

impl Sm {
    /// The earliest future cycle at which this SM could change state, or
    /// `None` if it is fully quiescent.
    ///
    /// A returned cycle `<= now` means the SM is busy *right now* (some
    /// non-inert warp can issue this cycle), so fast-forward must not skip
    /// anything. Horizons come from two sources: in-flight context
    /// transitions (whose completion mutates slot state in
    /// `process_transitions`) and stalled warps' `ready_at` scoreboards.
    /// Warps never hold the [`icn::PENDING`] sentinel here: the machine
    /// drains every port before it consults horizons.
    ///
    /// The result does not depend on `now` (the caller compares it against
    /// its own clock), so it is memoized in [`super::WakeCache`] and only
    /// recomputed after a mutation of the horizon's inputs — the win that
    /// lets repeated fast-forward probes of a quiescent SM cost one `Cell`
    /// read instead of a warp-table scan.
    pub(crate) fn next_event(&self, _now: Cycle) -> Option<Cycle> {
        if let Some(v) = self.wake.get() {
            return v;
        }
        let v = self.compute_next_event();
        self.wake.put(v);
        v
    }

    fn compute_next_event(&self) -> Option<Cycle> {
        let mut horizon: Option<Cycle> = None;
        let fold = |h: &mut Option<Cycle>, c: Cycle| {
            *h = Some(h.map_or(c, |v| v.min(c)));
        };
        for &slot in &self.transitioning {
            if self.tbs.is_occupied(slot) {
                if let Some(until) = self.tbs.transition_done_at(slot) {
                    fold(&mut horizon, until);
                }
            }
        }
        if self.sched_frozen || self.used_threads == 0 {
            // A frozen or empty SM never issues; only transitions can fire.
            return horizon;
        }
        let inert: [bool; MAX_KERNELS] = std::array::from_fn(|k| self.quota_inert(k));
        let t = &self.warps;
        for wi in 0..t.words() {
            let mut inert_bits = 0u64;
            for (k, &is_inert) in inert.iter().enumerate() {
                if is_inert {
                    inert_bits |= t.kernel_mask[k][wi];
                }
            }
            let waiting = t.occupied[wi] & !t.done[wi] & !t.at_barrier[wi] & !inert_bits;
            // Warps of Active TBs wake at their scoreboard release.
            let mut bits = waiting & t.tb_active[wi];
            while bits != 0 {
                let slot = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                fold(&mut horizon, t.ready_at[slot]);
            }
            // Warps of Loading TBs wake at the later of their scoreboard
            // release and the load completion. (Warps of Saving TBs are
            // frozen — neither phase bit set — and the save completion is
            // already a transition horizon above.)
            let mut bits = waiting & t.tb_loading[wi];
            while bits != 0 {
                let slot = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let until =
                    self.tbs.transition_done_at(t.tb_slot[slot]).unwrap_or(t.ready_at[slot]);
                fold(&mut horizon, t.ready_at[slot].max(until));
            }
        }
        horizon
    }

    /// Accounts for the idle cycles `[from, target)` jumped over by
    /// fast-forward, mirroring exactly what per-cycle [`Sm::tick`] calls
    /// would have done: a hosted, unfrozen SM burns busy cycles and empty
    /// issue slots even when no warp can issue, and the gather loop counts
    /// every issuable-but-quota-denied warp once per cycle. Neither the
    /// freeze/occupancy conditions nor kernel inertness can change
    /// mid-window (they only move on simulated cycles), so the quota-blocked
    /// tally is replayed per warp from its scoreboard release to the window
    /// end. Only quota-inert kernels can own issuable warps inside a skipped
    /// window — a non-inert issuable warp would have held fast-forward back
    /// via [`Sm::next_event`] — and transitioning TBs stay un-issuable for
    /// the whole window because their completion is itself a horizon.
    ///
    /// Touches only this SM's private state, so the machine may run it for
    /// all domains concurrently under `intra_parallel`. Statistics do not
    /// feed [`Sm::next_event`], so the wake cache survives the skip.
    pub(crate) fn note_skipped_cycles(&mut self, from: Cycle, target: Cycle) {
        if self.sched_frozen || self.used_threads == 0 {
            return;
        }
        let skipped = target - from;
        self.busy_cycles += skipped;
        self.issue_slots += skipped * u64::from(self.num_scheds);
        let inert: [bool; MAX_KERNELS] = std::array::from_fn(|k| self.quota_inert(k));
        if !inert.iter().any(|&b| b) {
            return;
        }
        let mut blocked: PerKernel<u64> = per_kernel(|_| 0);
        let t = &self.warps;
        for wi in 0..t.words() {
            let mut inert_bits = 0u64;
            for (k, &is_inert) in inert.iter().enumerate() {
                if is_inert {
                    inert_bits |= t.kernel_mask[k][wi];
                }
            }
            // `tb_active` mirrors `phase == Active` exactly (maintained at
            // every transition), matching the old per-warp phase test.
            let mut bits =
                t.occupied[wi] & !t.done[wi] & !t.at_barrier[wi] & t.tb_active[wi] & inert_bits;
            while bits != 0 {
                let slot = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let start = from.max(t.ready_at[slot]);
                if start < target {
                    blocked[t.kernel[slot].index()] += target - start;
                }
            }
        }
        for (k, b) in blocked.iter().enumerate() {
            self.quota_blocked[k] += b;
        }
    }

    /// Advances the SM by one cycle, touching only domain-local state.
    ///
    /// Global-memory instructions do not reach the shared hierarchy here:
    /// they are parked in this SM's `IcnPort` and served when the machine
    /// calls [`Sm::drain_icn`] at the end-of-cycle barrier. Because every
    /// read and write stays inside the domain, the machine may tick all SMs
    /// concurrently under `intra_parallel` with bit-identical results.
    pub(crate) fn tick(&mut self, now: Cycle) {
        if !self.transitioning.is_empty() {
            self.process_transitions(now);
        }
        if self.sched_frozen || self.used_threads == 0 {
            return;
        }
        self.busy_cycles += 1;
        self.issue_slots += u64::from(self.num_scheds);
        if self.stride_masks.is_empty() {
            self.build_stride_masks();
        }

        // When no kernel is gated and neither the priority gate nor a quota
        // freeze is active, `quota_allows` is `true` for every kernel and
        // mutates nothing (its very first branches), so the gather can skip
        // the call — and the scavenger can never match (it only admits
        // *gated* exhausted kernels). Nothing inside the scheduler loop
        // changes these inputs — `issue` debits quota counters but never
        // flips a gate — so the flag is computed once per tick. It also
        // short-circuits `any_inert_resident` below (no kernel can be inert
        // without a gate set).
        let all_allowed =
            !self.quota_frozen && !self.priority_block && !self.gated.iter().any(|&g| g);

        // Quiescent-tick fast path. When the memoized wake horizon lies in
        // the future, no non-inert warp can issue at `now`, so the slow path
        // below would find no candidates, call no (mutating) quota check,
        // issue nothing, and leave scheduler state untouched — its only
        // effects are the busy/issue-slot counters incremented above. The
        // one other thing a full gather does is count issuable warps of
        // *inert* kernels into `quota_blocked`, so the shortcut additionally
        // requires that no kernel is inert while owning resident warps
        // (`quota_inert` guarantees `quota_allows` would be a mutation-free
        // `false` for exactly those warps). Memory-bound SMs spend hundreds
        // of consecutive cycles in this state; the cache makes each one a
        // `Cell` read instead of a warp-table scan (DESIGN.md §18).
        if let Some(cached) = self.wake.get() {
            let busy_now = matches!(cached, Some(w) if w <= now);
            if !busy_now && (all_allowed || !self.any_inert_resident()) {
                return;
            }
        }

        let mut sel = SelTimer::new(self.profile_issue && now.is_multiple_of(SEL_SAMPLE_PERIOD));
        sel.resume();

        // Issuable candidate words for this cycle: occupied, not retired,
        // not parked at a barrier, owning TB in Active phase (`tb_active`
        // mirrors the phase exactly; a Loading TB due this cycle was flipped
        // to Active by `process_transitions` above), scoreboard released
        // (`ready_at <= now`). The ready sweep is a straight branchless pass
        // over the `ready_at` column — the compare vectorizes and never
        // mispredicts, where the old per-candidate `ready_at` branch inside
        // the bit-scan was data-dependent and mispredict-heavy on the dense
        // path. Mid-tick mutations (issue, barrier release, TB drain) never
        // make a masked-out warp issuable at `now` — barrier releases push
        // `ready_at` past `now`, drained TBs' warps are all done, and an
        // issue only rewrites the issuing scheduler's own stripe, which is
        // never revisited this tick — so one mask, filtered per slot by the
        // quota checks alone, serves every scheduler (DESIGN.md §18).
        let words = self.warps.words();
        self.live_buf.resize(words, 0);
        {
            let t = &self.warps;
            let live_buf = &mut self.live_buf;
            for (wi, out) in live_buf.iter_mut().enumerate() {
                let live = t.occupied[wi] & !t.done[wi] & !t.at_barrier[wi] & t.tb_active[wi];
                if live == 0 {
                    *out = 0;
                    continue;
                }
                // Sweep only up to the highest live slot: dispatch fills
                // slots from the bottom, so a partially occupied SM (the
                // common case — occupancy limits bite well below the 64-slot
                // table) pays for the slots it uses, not the table size.
                let top = 64 - live.leading_zeros() as usize;
                let base = wi * 64;
                let mut ready = 0u64;
                for (b, &ra) in t.ready_at[base..base + top].iter().enumerate() {
                    ready |= u64::from(ra <= now) << b;
                }
                *out = live & ready;
            }
        }

        let mut issued_any = false;
        let n_scheds = usize::from(self.num_scheds);
        if all_allowed && n_scheds.is_power_of_two() && n_scheds <= MAX_SCHEDS_FUSED {
            // Fused dense-path gather: one trailing-zeros pass over the
            // issuable words computes every scheduler's pick at once, instead
            // of re-walking the words per scheduler. Each visited slot folds
            // into its owning scheduler's accumulator (`sid = slot & (n-1)`,
            // exactly the stripe partition), and within one stripe the fused
            // scan still yields slots in increasing order — the same
            // subsequence, in the same order, the per-scheduler stripe scans
            // visit — so the sentinel folds produce identical picks. Reading
            // all gathers from tick-start state before any issue matches the
            // interleaved gather/issue sequence bit-for-bit: an issue only
            // rewrites its own slot's scoreboard (own stripe, already
            // gathered) and barrier releases push `ready_at` past `now`, so
            // no later scheduler's fold inputs change mid-tick — and with no
            // kernel gated there is no mutating `quota_allows` whose call
            // order could matter (DESIGN.md §18).
            let mut greedy_s = [u16::MAX; MAX_SCHEDS_FUSED];
            let mut cursor = [0u16; MAX_SCHEDS_FUSED];
            for sid in 0..n_scheds {
                greedy_s[sid] = self.scheds[sid].greedy.unwrap_or(u16::MAX);
                cursor[sid] = self.scheds[sid].rr_cursor;
            }
            let mut greedy_ready = [false; MAX_SCHEDS_FUSED];
            let mut best_slot = [u16::MAX; MAX_SCHEDS_FUSED];
            let mut best_age = [u64::MAX; MAX_SCHEDS_FUSED];
            let mut first_slot = [u16::MAX; MAX_SCHEDS_FUSED];
            let mut first_after = [u16::MAX; MAX_SCHEDS_FUSED];
            let sid_mask = n_scheds - 1;
            {
                let t = &self.warps;
                let policy = self.policy;
                for wi in 0..words {
                    let mut bits = self.live_buf[wi];
                    while bits != 0 {
                        let slot = wi * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let s = slot as u16;
                        let sid = slot & sid_mask;
                        match policy {
                            SchedPolicy::Gto => {
                                greedy_ready[sid] |= s == greedy_s[sid];
                                if t.age[slot] < best_age[sid] {
                                    best_age[sid] = t.age[slot];
                                    best_slot[sid] = s;
                                }
                            }
                            SchedPolicy::Lrr => {
                                first_slot[sid] = first_slot[sid].min(s);
                                first_after[sid] = first_after[sid].min(if s > cursor[sid] {
                                    s
                                } else {
                                    u16::MAX
                                });
                            }
                        }
                    }
                }
            }
            for sid in 0..n_scheds {
                let pick = match self.policy {
                    SchedPolicy::Gto if greedy_ready[sid] => self.scheds[sid].greedy,
                    SchedPolicy::Gto => (best_slot[sid] != u16::MAX).then_some(best_slot[sid]),
                    SchedPolicy::Lrr if first_after[sid] != u16::MAX => Some(first_after[sid]),
                    SchedPolicy::Lrr => (first_slot[sid] != u16::MAX).then_some(first_slot[sid]),
                };
                // No scavenge arm: with no kernel gated there is nothing in
                // scavengeable state, so the call would be a guaranteed miss.
                if let Some(slot) = pick {
                    self.scheds[sid].greedy = Some(slot);
                    self.scheds[sid].rr_cursor = slot;
                    sel.pause();
                    self.issue(slot, now);
                    self.issued_total += 1;
                    issued_any = true;
                    sel.resume();
                }
            }
            sel.pause();
            if sel.on {
                self.issue_select_nanos += sel.nanos() * SEL_SAMPLE_PERIOD;
                self.issue_select_calls += 1;
            }
            if !issued_any && self.wake.get().is_none() {
                let v = self.compute_next_event();
                self.wake.put(v);
            }
            return;
        }
        for sid in 0..n_scheds {
            // Gather issuable warps for this scheduler: a trailing-zeros
            // scan over this scheduler's slot stripe, yielding slots in
            // increasing order (the old strided walk's order, which the
            // mutating `quota_allows` refill rules depend on). The policy
            // choice folds into the same scan: GTO needs only the first
            // minimum-age candidate (and whether the greedy slot is among
            // the candidates), LRR only the first candidate and the first
            // one past the cursor — all of which the increasing-slot order
            // yields without materializing a candidate list.
            // Sentinel-folded selection state: `u16::MAX` can never be a
            // warp slot (the table is at most 64 slots per word times a few
            // words), so it doubles as "none yet" without an `Option`
            // discriminant branch per candidate. The scan yields slots in
            // increasing order, so "first candidate" and "first past the
            // cursor" are plain minima.
            let greedy = self.scheds[sid].greedy;
            let greedy_s = greedy.unwrap_or(u16::MAX);
            let cursor = self.scheds[sid].rr_cursor;
            let mut greedy_ready = false;
            let mut best_slot = u16::MAX;
            let mut best_age = u64::MAX;
            let mut first_slot = u16::MAX;
            let mut first_after = u16::MAX;
            if all_allowed {
                // Dense-path arm: every issuable warp is a candidate and no
                // per-candidate bookkeeping mutates `self`.
                let t = &self.warps;
                let policy = self.policy;
                let stripe = &self.stride_masks[sid];
                for (wi, &stripe_w) in stripe.iter().enumerate().take(words) {
                    let mut bits = self.live_buf[wi] & stripe_w;
                    while bits != 0 {
                        let slot = wi * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let s = slot as u16;
                        match policy {
                            SchedPolicy::Gto => {
                                greedy_ready |= s == greedy_s;
                                // Strict `<` keeps the *first* minimum (ages
                                // are unique, but this also matches
                                // `min_by_key` over the scan order exactly).
                                if t.age[slot] < best_age {
                                    best_age = t.age[slot];
                                    best_slot = s;
                                }
                            }
                            SchedPolicy::Lrr => {
                                first_slot = first_slot.min(s);
                                first_after =
                                    first_after.min(if s > cursor { s } else { u16::MAX });
                            }
                        }
                    }
                }
            } else {
                for wi in 0..words {
                    let mut bits = self.live_buf[wi] & self.stride_masks[sid][wi];
                    while bits != 0 {
                        let slot = wi * 64 + bits.trailing_zeros() as usize;
                        bits &= bits - 1;
                        let k = self.warps.kernel[slot].index();
                        if self.quota_allows(k) {
                            let s = slot as u16;
                            match self.policy {
                                SchedPolicy::Gto => {
                                    greedy_ready |= s == greedy_s;
                                    if self.warps.age[slot] < best_age {
                                        best_age = self.warps.age[slot];
                                        best_slot = s;
                                    }
                                }
                                SchedPolicy::Lrr => {
                                    first_slot = first_slot.min(s);
                                    first_after =
                                        first_after.min(if s > cursor { s } else { u16::MAX });
                                }
                            }
                        } else {
                            self.quota_blocked[k] += 1;
                        }
                    }
                }
            }
            let pick = match self.policy {
                SchedPolicy::Gto if greedy_ready => greedy,
                SchedPolicy::Gto => (best_slot != u16::MAX).then_some(best_slot),
                SchedPolicy::Lrr if first_after != u16::MAX => Some(first_after),
                SchedPolicy::Lrr => (first_slot != u16::MAX).then_some(first_slot),
            };
            if let Some(slot) = pick {
                self.scheds[sid].greedy = Some(slot);
                self.scheds[sid].rr_cursor = slot;
            }
            // The scavenger scan counts as selection; only the issue()
            // execution is carved out of the span, so an issue-free tick
            // costs exactly two clock reads. With no kernel gated the
            // scavenger is a guaranteed miss (it only admits gated exhausted
            // kernels), so the dense path skips the call.
            let pick = if all_allowed { pick } else { pick.or_else(|| self.scavenge(sid, now)) };
            if let Some(slot) = pick {
                // Work-conserving slack reclamation (the scavenge arm): the
                // slot would idle -- no admissible warp is ready -- so a
                // quota-exhausted *non-QoS* warp may use it (QoS kernels
                // stay throttled at their goals; this is the "keep them
                // running" intent of the mid-epoch rule in section 3.4.1).
                // The issue still debits the quota counter, so epoch
                // accounting and the section 3.5 feedback see the true
                // consumption.
                sel.pause();
                self.issue(slot, now);
                self.issued_total += 1;
                issued_any = true;
                sel.resume();
            }
        }
        sel.pause();
        if sel.on {
            // Scale the sampled span back to a full-rate estimate so the
            // profile table's share column reads directly against wall time.
            self.issue_select_nanos += sel.nanos() * SEL_SAMPLE_PERIOD;
            self.issue_select_calls += 1;
        }
        // An issue-free slow tick means the SM just went (or stayed)
        // quiescent: refill the wake cache now so the following stalled
        // cycles take the fast path above. Issuing ticks skip this — the
        // issue invalidated the cache and the SM is busy anyway, so the
        // recompute would be pure overhead on the compute-bound path. Safe
        // before the drain barrier: an issue-free tick parked no warp on
        // the [`icn::PENDING`] sentinel.
        if !issued_any && self.wake.get().is_none() {
            let v = self.compute_next_event();
            self.wake.put(v);
        }
    }

    /// Drains this SM's interconnect port into the shared memory system and
    /// applies the responses to the issuing warps' scoreboards.
    ///
    /// The machine calls this once per cycle, after all SM domains have
    /// ticked, iterating SMs in index order — so the shared queues observe
    /// requests in exactly the order the old serial loop produced them
    /// (SM 0's issues in scheduler order, then SM 1's, …), which is the
    /// determinism argument for `intra_parallel` stepping (DESIGN.md §13).
    pub(crate) fn drain_icn(
        &mut self,
        mem: &mut MemSystem,
        now: Cycle,
        prof: &mut crate::telemetry::HostProfiler,
    ) {
        if self.icn.requests.is_empty() {
            return;
        }
        // Responses rewrite warp scoreboards, an input of `next_event`.
        self.wake.invalidate();
        let t0 = prof.begin();
        let mut port = std::mem::take(&mut self.icn);
        for req in port.requests.drain(..) {
            let s = req.miss_start as usize;
            let misses = &port.lines[s..s + req.miss_len as usize];
            let ready_at = mem.serve(req.kernel, misses, u64::from(req.total_lines), now);
            port.responses.push(IcnResponse { warp_slot: req.warp_slot, ready_at });
        }
        port.lines.clear();
        // Host-time attribution (opt-in, free when disabled): the serve loop
        // above is the shared-memory-system phase; the response delivery
        // below is the interconnect-drain phase proper.
        let t1 = prof.lap(crate::telemetry::ProfPhase::MemsysServe, t0);
        for resp in port.responses.drain(..) {
            // A vacated slot means the warp retired on this very instruction
            // and its whole TB completed at issue time; the serial path wrote
            // the completion cycle into a warp that was removed in the same
            // call, so dropping the response is identical — and keeps the
            // freed slot's canonical zeroed state intact. Slots cannot have
            // been *reused* yet: dispatch only happens in the TB scheduler's
            // service pass, outside the tick→drain window.
            if self.warps.is_occupied(resp.warp_slot) {
                self.warps.ready_at[usize::from(resp.warp_slot)] = resp.ready_at;
            }
        }
        // Hand the (now empty) buffers back so next cycle reuses the
        // allocations.
        self.icn = port;
        prof.end(crate::telemetry::ProfPhase::IcnDrain, t1);
    }

    /// Steps the SM one cycle *and* drains its port immediately — the
    /// single-SM equivalent of the machine's tick→barrier→drain sequence,
    /// for tests that drive an SM without a `Gpu` around it.
    #[cfg(test)]
    pub(crate) fn step(&mut self, now: Cycle, mem: &mut MemSystem) {
        self.tick(now);
        self.drain_icn(mem, now, &mut crate::telemetry::HostProfiler::new());
    }

    /// Oldest issuable non-QoS warp whose kernel is only blocked by an
    /// exhausted quota; `None` under the Rollover-Time priority gate while
    /// QoS quota remains (strict time multiplexing is that scheme's point).
    fn scavenge(&self, sid: usize, _now: Cycle) -> Option<u16> {
        if self.quota_frozen {
            return None;
        }
        // No kernel in scavengeable state (gated, non-QoS, exhausted) means
        // the stripe scan below cannot match — skip it. This is the common
        // case on every unmanaged scenario, where an empty issue slot would
        // otherwise pay a second full scan per scheduler per cycle.
        if !(0..MAX_KERNELS).any(|k| self.gated[k] && !self.is_qos[k] && self.quota[k] <= 0) {
            return None;
        }
        if self.priority_block && self.any_qos_quota_positive() {
            return None;
        }
        let mut best: Option<(u16, u64)> = None;
        let t = &self.warps;
        for wi in 0..t.words() {
            // `live_buf` already folds in the `ready_at <= now` test.
            let mut bits = self.live_buf[wi] & self.stride_masks[sid][wi];
            while bits != 0 {
                let slot = wi * 64 + bits.trailing_zeros() as usize;
                bits &= bits - 1;
                let k = t.kernel[slot].index();
                if self.gated[k] && !self.is_qos[k] && self.quota[k] <= 0 {
                    match best {
                        Some((_, age)) if age <= t.age[slot] => {}
                        _ => best = Some((slot as u16, t.age[slot])),
                    }
                }
            }
        }
        best.map(|(slot, _)| slot)
    }

    fn issue(&mut self, slot: u16, now: Cycle) {
        // Issue rewrites scoreboards (and possibly barrier/retire state),
        // all inputs of `next_event`.
        self.wake.invalidate();
        let i = usize::from(slot);
        let k = self.warps.kernel[i].index();
        // `Op` is `Copy` and the body length is all the control flow needs,
        // so the hot path reads the flattened `bodies` mirror — one indexed
        // load — instead of chasing `Option<Arc<KernelDesc>>`. An empty
        // mirror means this SM was just restored from a snapshot (`bodies`
        // is skip-snapped); rebuild it from the authoritative desc. A warp
        // can only issue from a registered, non-empty kernel body, so
        // emptiness is an unambiguous "not built yet" sentinel.
        if self.bodies[k].is_empty() {
            self.bodies[k] = self.descs[k].as_ref().expect("desc").body().to_vec();
        }
        let (op, body_len) = {
            let body = &self.bodies[k];
            (body[usize::from(self.warps.pc[i])], body.len())
        };

        if self.warps.rem[i] == 0 {
            self.warps.rem[i] = match op {
                Op::Alu { repeat, .. } | Op::Sfu { repeat, .. } => repeat.max(1),
                Op::Mem { .. } | Op::Bar => 1,
            };
        }

        let lanes;
        match op {
            Op::Alu { latency, active_lanes, .. } => {
                lanes = active_lanes;
                self.warps.ready_at[i] = now + Cycle::from(latency.max(1));
                self.alu_thread_insts[k] += u64::from(active_lanes);
            }
            Op::Sfu { latency, active_lanes, .. } => {
                lanes = active_lanes;
                self.warps.ready_at[i] = now + Cycle::from(latency.max(1));
                self.sfu_thread_insts[k] += u64::from(active_lanes);
            }
            Op::Mem { space: MemSpace::Shared, active_lanes, .. } => {
                lanes = active_lanes;
                self.warps.ready_at[i] = now + Cycle::from(self.l1_hit_latency);
                self.smem_accesses[k] += u64::from(active_lanes);
            }
            Op::Mem { space: MemSpace::Global, pattern, active_lanes, .. } => {
                lanes = active_lanes;
                let tb_index = self.tbs.tb_index[usize::from(self.warps.tb_slot[i])].0;
                let mut buf = [0u64; 32];
                let n = self.warps.addr_stream(slot).gen_lines(
                    &pattern,
                    KernelDesc::base_addr(k),
                    self.line_bytes,
                    tb_index,
                    &mut buf,
                );
                // The private L1 is looked up here, inside the domain; only
                // the misses cross the interconnect. The request is enqueued
                // even when every line hit, because the L1-access ledger
                // lives in the memory domain and counts total lines. The
                // warp parks on the PENDING sentinel until the drain writes
                // the real completion cycle later this same cycle.
                let miss_start = self.icn.lines.len() as u32;
                for &addr in &buf[..n] {
                    if self.l1.access(addr) == crate::cache::AccessOutcome::Miss {
                        self.icn.lines.push(addr);
                    }
                }
                let miss_len = self.icn.lines.len() as u32 - miss_start;
                self.icn.requests.push(IcnRequest {
                    kernel: self.warps.kernel[i],
                    warp_slot: slot,
                    total_lines: n as u32,
                    miss_start,
                    miss_len,
                });
                self.warps.ready_at[i] = icn::PENDING;
            }
            Op::Bar => {
                lanes = crate::WARP_SIZE as u8;
                self.warps.ready_at[i] = now + 1;
            }
        }

        // Retire one dynamic instruction and advance the program counter.
        self.warps.rem[i] -= 1;
        let mut arrived_barrier = false;
        let mut retired = false;
        if self.warps.rem[i] == 0 {
            self.warps.pc[i] += 1;
            if usize::from(self.warps.pc[i]) == body_len {
                self.warps.iter[i] -= 1;
                if self.warps.iter[i] == 0 {
                    mask_set(&mut self.warps.done, slot);
                    retired = true;
                } else {
                    self.warps.pc[i] = 0;
                }
            }
            if matches!(op, Op::Bar) {
                mask_set(&mut self.warps.at_barrier, slot);
                arrived_barrier = true;
            }
        }
        let tb_slot = self.warps.tb_slot[i];

        self.counters[k].thread_insts += u64::from(lanes);
        self.counters[k].warp_insts += 1;
        if self.gated[k] {
            let before = self.quota[k];
            self.quota[k] -= i64::from(lanes);
            self.quota_debit[k] += i64::from(lanes);
            if before > 0 && self.quota[k] <= 0 {
                self.quota_exhaustions[k] += 1;
                self.record(now, TraceEventKind::QuotaExhausted { kernel: k as u32 });
            }
        }

        if arrived_barrier {
            self.note_barrier_arrival(tb_slot, now);
        }
        if retired {
            self.note_warp_retired(tb_slot, now);
        }
    }
}
