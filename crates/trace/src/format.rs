//! Trace content: what an FGTR file records about one kernel.
//!
//! A [`KernelTrace`] is self-contained: everything needed to replay the
//! kernel — name, seed, per-TB resource shape, and the per-warp
//! instruction-mix/locality events — travels inside the trace, alongside
//! the *observed* per-TB lifecycle records from the capture run. Replay
//! ([`KernelTrace::kernel`]) rebuilds the exact [`KernelDesc`]; the
//! lifecycle records are the ground truth the `repro validate` harness
//! correlates against.

use gpu_sim::kernel::{KernelDesc, MemSpace, Op};

use crate::frame::TraceError;

/// Provenance and reproduction context of a capture.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceMeta {
    /// Kernel name (also the replayed kernel's name).
    pub name: String,
    /// Free-form provenance, e.g. `"synthetic-parboil/gpu-sim-observe"`.
    pub source: String,
    /// Base RNG seed of the traced kernel's address streams.
    pub seed: u64,
    /// Simulated cycles the capture run executed.
    pub capture_cycles: u64,
    /// [`gpu_sim::Gpu::config_fingerprint`] of the capture machine.
    pub config_fingerprint: u64,
}

gpu_sim::impl_snap_struct!(TraceMeta { name, source, seed, capture_cycles, config_fingerprint });

/// The traced kernel's static per-TB resource shape ("length" in grid and
/// loop terms).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbShape {
    /// Threads per thread block (positive multiple of the warp size).
    pub threads_per_tb: u32,
    /// Registers per thread.
    pub regs_per_thread: u32,
    /// Shared memory per TB in bytes.
    pub smem_per_tb: u64,
    /// TBs per grid execution.
    pub grid_tbs: u32,
    /// Loop iterations of the body each warp executes.
    pub iterations: u32,
    /// Whether the kernel is classified memory-intensive.
    pub memory_intensive: bool,
}

gpu_sim::impl_snap_struct!(TbShape {
    threads_per_tb,
    regs_per_thread,
    smem_per_tb,
    grid_tbs,
    iterations,
    memory_intensive,
});

/// One observed TB execution from the capture run (see
/// [`gpu_sim::TbLifecycle`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TbRecord {
    /// Grid index of the TB.
    pub tb: u32,
    /// SM the TB executed on.
    pub sm: u32,
    /// Cycle the TB was dispatched.
    pub dispatch_cycle: u64,
    /// Cycle the TB drained.
    pub drain_cycle: u64,
    /// Whether the dispatch restored a saved context.
    pub resumed: bool,
}

gpu_sim::impl_snap_struct!(TbRecord { tb, sm, dispatch_cycle, drain_cycle, resumed });

/// A complete kernel trace: metadata, static shape, the per-warp
/// instruction-mix/locality event stream, and the observed TB lifecycles.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelTrace {
    /// Provenance and capture context.
    pub meta: TraceMeta,
    /// Static per-TB resource shape.
    pub shape: TbShape,
    /// The per-warp body: instruction-mix (ALU/SFU/memory/barrier) and
    /// locality ([`gpu_sim::AccessPattern`]) events, one loop pass.
    pub warp_ops: Vec<Op>,
    /// Observed per-TB lifecycle records, ordered by
    /// (dispatch cycle, SM, TB).
    pub tbs: Vec<TbRecord>,
}

gpu_sim::impl_snap_struct!(KernelTrace { meta, shape, warp_ops, tbs });

impl KernelTrace {
    /// Semantic validation: every invariant [`KernelDesc`]'s builder
    /// enforces, checked without panicking, plus trace-level ordering
    /// invariants. The strict reader runs this after decoding, so a trace
    /// obtained from [`crate::from_bytes`] always satisfies it and
    /// [`KernelTrace::kernel`] cannot panic on it.
    ///
    /// # Errors
    ///
    /// [`TraceError::Invalid`] naming the first violated invariant.
    pub fn validate(&self) -> Result<(), TraceError> {
        let fail = |msg: &'static str| Err(TraceError::Invalid(msg));
        if self.meta.name.is_empty() {
            return fail("empty kernel name");
        }
        if self.warp_ops.is_empty() {
            return fail("empty warp-op stream");
        }
        if matches!(self.warp_ops.last(), Some(Op::Bar)) {
            return fail("warp-op stream ends in a barrier");
        }
        if self.shape.iterations == 0 {
            return fail("zero iterations");
        }
        if self.shape.grid_tbs == 0 {
            return fail("empty grid");
        }
        if self.shape.threads_per_tb == 0
            || !self.shape.threads_per_tb.is_multiple_of(gpu_sim::WARP_SIZE)
        {
            return fail("threads_per_tb not a positive multiple of the warp size");
        }
        for op in &self.warp_ops {
            let lanes = match *op {
                Op::Alu { active_lanes, .. }
                | Op::Sfu { active_lanes, .. }
                | Op::Mem { active_lanes, .. } => active_lanes,
                Op::Bar => 32,
            };
            if !(1..=gpu_sim::WARP_SIZE as u8).contains(&lanes) {
                return fail("active_lanes outside 1..=32");
            }
            if let Op::Mem { space: MemSpace::Global, pattern, .. } = op {
                if !(1..=gpu_sim::WARP_SIZE as u8).contains(&pattern.transactions) {
                    return fail("transactions outside 1..=32");
                }
                if pattern.footprint_bytes == 0 {
                    return fail("zero access footprint");
                }
            }
        }
        for r in &self.tbs {
            if r.drain_cycle < r.dispatch_cycle {
                return fail("TB drains before its dispatch");
            }
        }
        if !self.tbs.is_sorted_by_key(|r| (r.dispatch_cycle, r.sm, r.tb)) {
            return fail("TB records out of (dispatch, sm, tb) order");
        }
        Ok(())
    }

    /// Rebuilds the traced kernel. The result is byte-for-byte the
    /// description that was captured, so replaying it on an identically
    /// configured machine reproduces the original run exactly.
    ///
    /// # Panics
    ///
    /// Panics if the trace violates [`KernelTrace::validate`]; traces from
    /// the strict reader never do.
    #[must_use]
    pub fn kernel(&self) -> KernelDesc {
        KernelDesc::builder(self.meta.name.clone())
            .threads_per_tb(self.shape.threads_per_tb)
            .regs_per_thread(self.shape.regs_per_thread)
            .smem_per_tb(self.shape.smem_per_tb)
            .grid_tbs(self.shape.grid_tbs)
            .iterations(self.shape.iterations)
            .seed(self.meta.seed)
            .memory_intensive(self.shape.memory_intensive)
            .body(self.warp_ops.clone())
            .build()
    }

    /// One-line human summary (name, shape, op and TB record counts).
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "{}: {} TBs/grid x {} threads, {} warp ops x {} iterations, \
             {} observed TB executions over {} cycles",
            self.meta.name,
            self.shape.grid_tbs,
            self.shape.threads_per_tb,
            self.warp_ops.len(),
            self.shape.iterations,
            self.tbs.len(),
            self.meta.capture_cycles
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::AccessPattern;

    pub(crate) fn sample() -> KernelTrace {
        KernelTrace {
            meta: TraceMeta {
                name: "sample".into(),
                source: "unit-test".into(),
                seed: 7,
                capture_cycles: 1_000,
                config_fingerprint: 0xfeed,
            },
            shape: TbShape {
                threads_per_tb: 64,
                regs_per_thread: 32,
                smem_per_tb: 1024,
                grid_tbs: 8,
                iterations: 2,
                memory_intensive: true,
            },
            warp_ops: vec![Op::mem_load(AccessPattern::tile(4096)), Op::Bar, Op::alu(4, 3)],
            tbs: vec![
                TbRecord { tb: 0, sm: 0, dispatch_cycle: 1, drain_cycle: 90, resumed: false },
                TbRecord { tb: 1, sm: 1, dispatch_cycle: 1, drain_cycle: 95, resumed: false },
            ],
        }
    }

    #[test]
    fn valid_trace_reconstructs_the_kernel() {
        let kt = sample();
        kt.validate().expect("sample is valid");
        let k = kt.kernel();
        assert_eq!(k.name(), "sample");
        assert_eq!(k.grid_tbs(), 8);
        assert_eq!(k.iterations(), 2);
        assert_eq!(k.seed(), 7);
        assert!(k.memory_intensive());
        assert_eq!(k.body(), kt.warp_ops.as_slice());
        assert!(!kt.summary().is_empty());
    }

    #[test]
    fn validation_names_the_violated_invariant() {
        let mut kt = sample();
        kt.warp_ops.clear();
        assert_eq!(kt.validate(), Err(TraceError::Invalid("empty warp-op stream")));

        let mut kt = sample();
        kt.warp_ops.push(Op::Bar);
        assert_eq!(kt.validate(), Err(TraceError::Invalid("warp-op stream ends in a barrier")));

        let mut kt = sample();
        kt.shape.threads_per_tb = 100;
        assert!(kt.validate().is_err());

        let mut kt = sample();
        kt.tbs[1].drain_cycle = 0;
        assert_eq!(kt.validate(), Err(TraceError::Invalid("TB drains before its dispatch")));

        let mut kt = sample();
        kt.tbs.swap(0, 1);
        assert_eq!(
            kt.validate(),
            Err(TraceError::Invalid("TB records out of (dispatch, sm, tb) order"))
        );
    }
}
