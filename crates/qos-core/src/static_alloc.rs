//! Static resource allocation: initial symmetric TB placement and the
//! victim-selection rules for run-time TB adjustment (§3.6).

use gpu_sim::{Gpu, KernelId, SmId};

use crate::goals::QosSpec;

/// The initial symmetric thread-block allocation plan.
///
/// Per §3.6: QoS kernels are distributed to *every* SM; the SMs are
/// partitioned equally among the non-QoS kernels; within each SM, resident
/// kernels receive equal thread shares.
#[derive(Debug, Clone, PartialEq)]
pub struct InitialPlan {
    /// `targets[sm][kernel]` = TBs of `kernel` that SM `sm` should host.
    pub targets: Vec<Vec<u16>>,
}

/// Whether a per-SM target vector is jointly feasible: the summed demand of
/// `targets[k]` TBs per kernel fits every SM resource (threads, registers,
/// shared memory, warp slots, TB slots).
pub fn targets_feasible(gpu: &Gpu, targets: &[u16]) -> bool {
    let sm = &gpu.config().sm;
    let (mut threads, mut regs, mut smem, mut warps, mut tbs) = (0u64, 0u64, 0u64, 0u64, 0u64);
    for (k, &t) in targets.iter().enumerate() {
        let d = gpu.kernel_desc(KernelId::new(k));
        let t = u64::from(t);
        threads += t * u64::from(d.threads_per_tb());
        regs += t * d.regfile_bytes_per_tb();
        smem += t * d.smem_per_tb();
        warps += t * u64::from(d.warps_per_tb());
        tbs += t;
    }
    threads <= u64::from(sm.max_threads)
        && regs <= sm.register_file_bytes
        && smem <= sm.shared_mem_bytes
        && warps <= u64::from(sm.max_warps())
        && tbs <= u64::from(sm.max_tbs)
}

/// Shrinks an infeasible target vector until it fits, never below one TB.
///
/// Non-QoS kernels shed first (largest thread footprint first); QoS kernels
/// only shrink when the best-effort kernels are already at one TB — the
/// initial plan should never hand a QoS kernel less TLP than its fair share
/// just because a best-effort co-runner is register-hungry.
fn shrink_to_fit(gpu: &Gpu, specs: &[QosSpec], targets: &mut [u16]) {
    while !targets_feasible(gpu, targets) {
        let pick = |qos: bool| {
            targets
                .iter()
                .enumerate()
                .filter(|&(k, &t)| t > 1 && specs[k].is_qos() == qos)
                .max_by_key(|&(k, &t)| {
                    u64::from(t) * u64::from(gpu.kernel_desc(KernelId::new(k)).threads_per_tb())
                })
                .map(|(k, _)| k)
        };
        match pick(false).or_else(|| pick(true)) {
            Some(k) => targets[k] -= 1,
            None => break, // every kernel at 1 TB; give up (can_host still guards)
        }
    }
}

/// Computes the initial plan for the launched kernels of `gpu`.
///
/// # Panics
///
/// Panics if `specs.len()` differs from the number of launched kernels.
pub fn initial_plan(gpu: &Gpu, specs: &[QosSpec]) -> InitialPlan {
    let nk = gpu.num_kernels();
    assert_eq!(specs.len(), nk, "one spec per launched kernel");
    let num_sms = gpu.sms().len();
    let max_threads = gpu.config().sm.max_threads;

    let nonqos: Vec<usize> = (0..nk).filter(|&k| !specs[k].is_qos()).collect();
    // Partition SMs among non-QoS kernels (QoS kernels go everywhere). With
    // no non-QoS kernel every kernel goes everywhere.
    let owner_of_sm = |sm: usize| -> Option<usize> {
        if nonqos.is_empty() {
            None
        } else {
            Some(nonqos[sm * nonqos.len() / num_sms])
        }
    };

    let mut targets = vec![vec![0u16; nk]; num_sms];
    for (sm, row) in targets.iter_mut().enumerate() {
        let resident: Vec<usize> =
            (0..nk).filter(|&k| specs[k].is_qos() || owner_of_sm(sm) == Some(k)).collect();
        let share = max_threads / resident.len().max(1) as u32;
        for &k in &resident {
            let kid = KernelId::new(k);
            let desc = gpu.kernel_desc(kid);
            let by_share = (share / desc.threads_per_tb()).max(1);
            let cap = gpu.max_resident_tbs(kid);
            row[k] = by_share.min(cap) as u16;
        }
        // Equal thread shares can still over-subscribe registers or shared
        // memory; shrink until the set is jointly feasible.
        shrink_to_fit(gpu, specs, row);
    }
    InitialPlan { targets }
}

impl InitialPlan {
    /// Applies the plan to the GPU's TB targets.
    pub fn apply(&self, gpu: &mut Gpu) {
        for (sm, row) in self.targets.iter().enumerate() {
            for (k, &tbs) in row.iter().enumerate() {
                gpu.set_tb_target(SmId::new(sm), KernelId::new(k), tbs);
            }
        }
    }
}

/// One kernel's standing when hunting for a TB-adjustment victim on an SM.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VictimCandidate {
    /// Kernel slot index.
    pub kernel: usize,
    /// Whether the kernel has a QoS goal.
    pub is_qos: bool,
    /// Idle TBs of the kernel on this SM (idle warps / warps-per-TB).
    pub idle_tbs: u32,
    /// The kernel's cumulative IPC so far.
    pub history_ipc: f64,
    /// The kernel's IPC goal (QoS kernels only).
    pub goal_ipc: Option<f64>,
    /// Total TBs the kernel holds across the whole GPU (the paper's `N`).
    pub total_tbs: u32,
    /// TBs the kernel holds on this SM.
    pub hosted_here: u32,
}

impl VictimCandidate {
    /// Whether this kernel may lose `needed` TBs under the §3.6 rules:
    /// it is non-QoS, **or** it has at least `needed + 1` idle TBs, **or**
    /// it has enough IPC margin: `IPC_history × (1 − needed/N) > IPC_goal`.
    pub fn eligible(&self, needed: u32) -> bool {
        if self.hosted_here < needed.max(1) {
            return false;
        }
        if !self.is_qos {
            return true;
        }
        self.has_slack(needed)
    }

    /// Whether this kernel may lose `needed` TBs to a *non-QoS* grower.
    ///
    /// Stricter than [`VictimCandidate::eligible`]: every victim — QoS or
    /// not — must demonstrably have slack (idle TBs or IPC margin), so two
    /// best-effort kernels cannot steal the same TBs back and forth and a
    /// QoS kernel is never drained below what its goal needs.
    pub fn eligible_for_nonqos_growth(&self, needed: u32) -> bool {
        if self.hosted_here < needed.max(1) {
            return false;
        }
        if !self.is_qos {
            return self.idle_tbs > needed;
        }
        self.has_slack(needed)
    }

    fn has_slack(&self, needed: u32) -> bool {
        if self.idle_tbs > needed {
            return true;
        }
        match self.goal_ipc {
            Some(goal) if self.total_tbs > 0 => {
                let frac = 1.0 - f64::from(needed) / f64::from(self.total_tbs);
                self.history_ipc * frac > goal
            }
            _ => false,
        }
    }
}

/// Picks the victim kernel to shed `needed` TBs: non-QoS kernels first,
/// then the eligible kernel with the most idle TBs.
pub fn select_victim(candidates: &[VictimCandidate], needed: u32) -> Option<usize> {
    pick(candidates, |c| c.eligible(needed))
}

/// Victim selection for a non-QoS grower (strict slack rules; see
/// [`VictimCandidate::eligible_for_nonqos_growth`]).
pub fn select_victim_for_nonqos(candidates: &[VictimCandidate], needed: u32) -> Option<usize> {
    pick(candidates, |c| c.eligible_for_nonqos_growth(needed))
}

fn pick<F: Fn(&VictimCandidate) -> bool>(
    candidates: &[VictimCandidate],
    eligible: F,
) -> Option<usize> {
    candidates
        .iter()
        .filter(|c| eligible(c))
        .max_by(|a, b| {
            // Non-QoS beats QoS; ties broken by idle TBs, then hosted count.
            let rank = |c: &VictimCandidate| (u32::from(!c.is_qos), c.idle_tbs, c.hosted_here);
            rank(a).cmp(&rank(b))
        })
        .map(|c| c.kernel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::GpuConfig;

    fn gpu_with(kernels: &[&str]) -> Gpu {
        let mut gpu = Gpu::new(GpuConfig::paper_table1());
        for name in kernels {
            gpu.launch(workloads::by_name(name).expect("known benchmark"));
        }
        gpu
    }

    #[test]
    fn pair_plan_is_symmetric() {
        let gpu = gpu_with(&["sgemm", "lbm"]);
        let specs = [QosSpec::qos(500.0), QosSpec::best_effort()];
        let plan = initial_plan(&gpu, &specs);
        assert_eq!(plan.targets.len(), 16);
        for row in &plan.targets {
            assert!(row[0] >= 1, "QoS kernel on every SM");
            assert!(row[1] >= 1, "single non-QoS kernel also everywhere");
        }
        // Equal thread shares (sgemm 4, lbm 8) over-subscribe the register
        // file; the plan must be shrunk to a jointly feasible set, and the
        // QoS kernel (sgemm) must keep its full fair share — the non-QoS
        // co-runner absorbs the shrinkage.
        assert!(targets_feasible(&gpu, &plan.targets[0]));
        assert_eq!(plan.targets[0][0], 4, "QoS kernel keeps its thread share");
        assert!((1..8).contains(&plan.targets[0][1]), "non-QoS kernel shrinks");
    }

    #[test]
    fn infeasible_targets_detected() {
        let gpu = gpu_with(&["sgemm", "lbm"]);
        assert!(targets_feasible(&gpu, &[2, 4]));
        assert!(!targets_feasible(&gpu, &[4, 8]), "384 KiB of registers in a 256 KiB file");
    }

    #[test]
    fn trio_partitions_nonqos_kernels() {
        let gpu = gpu_with(&["sgemm", "lbm", "spmv"]);
        let specs = [QosSpec::qos(500.0), QosSpec::best_effort(), QosSpec::best_effort()];
        let plan = initial_plan(&gpu, &specs);
        let lbm_sms = plan.targets.iter().filter(|r| r[1] > 0).count();
        let spmv_sms = plan.targets.iter().filter(|r| r[2] > 0).count();
        assert_eq!(lbm_sms, 8, "non-QoS kernels split the SMs");
        assert_eq!(spmv_sms, 8);
        for row in &plan.targets {
            assert!(row[0] >= 1, "QoS kernel everywhere");
            assert!(row[1] == 0 || row[2] == 0, "non-QoS partitions are disjoint");
        }
    }

    #[test]
    fn all_qos_trio_shares_every_sm() {
        let gpu = gpu_with(&["sgemm", "cutcp", "mri-q"]);
        let specs = [QosSpec::qos(1.0), QosSpec::qos(1.0), QosSpec::qos(1.0)];
        let plan = initial_plan(&gpu, &specs);
        for row in &plan.targets {
            assert!(row.iter().all(|&t| t >= 1));
        }
    }

    #[test]
    fn victim_prefers_nonqos() {
        let cands = [
            VictimCandidate {
                kernel: 0,
                is_qos: true,
                idle_tbs: 5,
                history_ipc: 1000.0,
                goal_ipc: Some(100.0),
                total_tbs: 64,
                hosted_here: 4,
            },
            VictimCandidate {
                kernel: 1,
                is_qos: false,
                idle_tbs: 0,
                history_ipc: 50.0,
                goal_ipc: None,
                total_tbs: 64,
                hosted_here: 4,
            },
        ];
        assert_eq!(select_victim(&cands, 1), Some(1));
    }

    #[test]
    fn qos_victim_needs_idle_tbs_or_margin() {
        let tight = VictimCandidate {
            kernel: 0,
            is_qos: true,
            idle_tbs: 1,
            history_ipc: 100.0,
            goal_ipc: Some(99.0),
            total_tbs: 64,
            hosted_here: 4,
        };
        assert!(!tight.eligible(1), "1 idle TB and ~no margin: protected");
        let idle = VictimCandidate { idle_tbs: 2, ..tight };
        assert!(idle.eligible(1), "n+1 idle TBs: eligible");
        let margin = VictimCandidate { history_ipc: 150.0, ..tight };
        assert!(margin.eligible(1), "150 * (1 - 1/64) > 99: eligible");
    }

    #[test]
    fn victim_requires_presence_on_sm() {
        let absent = VictimCandidate {
            kernel: 0,
            is_qos: false,
            idle_tbs: 0,
            history_ipc: 0.0,
            goal_ipc: None,
            total_tbs: 8,
            hosted_here: 0,
        };
        assert!(!absent.eligible(1));
        assert_eq!(select_victim(&[absent], 1), None);
    }

    #[test]
    fn plan_apply_round_trips() {
        let mut gpu = gpu_with(&["sgemm", "lbm"]);
        let specs = [QosSpec::qos(500.0), QosSpec::best_effort()];
        let plan = initial_plan(&gpu, &specs);
        plan.apply(&mut gpu);
        for sm in 0..16 {
            for k in 0..2 {
                assert_eq!(gpu.tb_target(SmId::new(sm), KernelId::new(k)), plan.targets[sm][k]);
            }
        }
    }
}
