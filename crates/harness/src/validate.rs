//! `repro validate` — trace-replay correlation against committed expectations.
//!
//! The validation harness replays the committed FGTR corpus under
//! `tests/golden/validate/` — one trace per synthetic Parboil model — on the
//! canonical tiny configuration under the rollover QoS manager, extracts one
//! scalar per metric per kernel from the counter registries and the epoch
//! telemetry, and correlates the replayed vector against the committed
//! expectations (Pearson's r across kernels, per metric). The run passes only
//! if every metric correlates at [`CORR_THRESHOLD`] or better **and** no
//! kernel's value drifts by more than [`MAX_REL_ERR`] relative error — the
//! second gate catches uniform shifts (e.g. a changed epoch length scaling
//! every quota grant) that leave correlation near 1.
//!
//! This is the same methodology simulator validation papers use to compare a
//! model against hardware, turned inward: the "hardware" is the committed
//! expectation corpus, so any change to scheduling, quota accounting, the
//! memory system, or the trace codec that shifts replayed behaviour fails
//! loudly with a correlation table. Regenerate after an intentional change
//! with `repro validate --bless` (or `--recapture` if the traces themselves
//! must be re-recorded); bless refuses to run when the on-disk corpus was
//! written by a different trace schema version.

use std::fmt::Write as _;
use std::path::{Path, PathBuf};

use gpu_sim::trace::Tracer;
use gpu_sim::{CounterEntry, CounterScope, Gpu, GpuConfig};
use qos_core::{QosManager, QosSpec, QuotaScheme};
use trace::{KernelTrace, TRACE_SCHEMA_VERSION};
use workloads::TraceLibrary;

/// Simulated cycles each replay runs. Long enough past the capture window
/// that every corpus kernel reaches steady state on the tiny machine.
pub const VALIDATE_CYCLES: u64 = 12_000;

/// Minimum acceptable per-metric Pearson correlation across kernels.
pub const CORR_THRESHOLD: f64 = 0.99;

/// Maximum acceptable per-kernel relative error on any metric.
pub const MAX_REL_ERR: f64 = 0.01;

/// The validated metrics, in table and expectation-file order.
pub const METRICS: [&str; 5] = ["ipc", "residency", "quota_grants", "l1_hit_rate", "l2_hit_rate"];

/// The directory holding the trace corpus and its expectations:
/// `tests/golden/validate/` at the repo root.
#[must_use]
pub fn validate_dir() -> PathBuf {
    PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../../tests/golden/validate"))
}

/// The committed expectations file.
#[must_use]
pub fn expectations_path() -> PathBuf {
    expectations_in(&validate_dir())
}

/// The expectations file inside an arbitrary corpus directory.
#[must_use]
pub fn expectations_in(dir: &Path) -> PathBuf {
    dir.join("expectations.json")
}

/// One kernel's replayed metric vector, aligned with [`METRICS`].
#[derive(Debug, Clone, PartialEq)]
pub struct KernelMetrics {
    /// Kernel name (the trace's `meta.name`).
    pub name: String,
    /// Metric values in [`METRICS`] order.
    pub values: [f64; METRICS.len()],
}

fn machine_counter(reg: &[CounterEntry], name: &str) -> f64 {
    reg.iter()
        .find(|e| e.name == name && e.scope == CounterScope::Machine)
        .map_or(0.0, |e| e.value as f64)
}

fn sm_counter_sum(reg: &[CounterEntry], name: &str) -> f64 {
    reg.iter()
        .filter(|e| e.name == name && matches!(e.scope, CounterScope::Sm(_)))
        .map(|e| e.value as f64)
        .sum()
}

fn kernel_counter(reg: &[CounterEntry], name: &str, k: usize) -> f64 {
    reg.iter()
        .find(|e| e.name == name && e.scope == CounterScope::Kernel(k))
        .map_or(0.0, |e| e.value as f64)
}

fn ratio(num: f64, den: f64) -> f64 {
    if den == 0.0 {
        0.0
    } else {
        num / den
    }
}

/// Replays one trace solo under the rollover QoS manager on `cfg` and
/// extracts its metric vector from the counter registries and the epoch
/// telemetry. Deterministic: same trace, same config, same vector.
#[must_use]
pub fn replay_metrics(kt: &KernelTrace, cfg: &GpuConfig) -> KernelMetrics {
    let mut gpu = Gpu::new(cfg.clone());
    let k = gpu.launch(kt.kernel());
    let mut ctrl =
        Tracer::new(QosManager::new(QuotaScheme::Rollover).with_kernel(k, QosSpec::qos(40.0)));
    gpu.run(VALIDATE_CYCLES, &mut ctrl);
    let (manager, records) = ctrl.into_parts();
    let reg = gpu.counter_registry();
    let qos = manager.counter_registry();

    let ipc = ratio(kernel_counter(&reg, "thread_insts", 0), machine_counter(&reg, "cycle"));
    let residency = if records.is_empty() {
        0.0
    } else {
        records.iter().map(|r| f64::from(r.kernels[0].hosted_tbs)).sum::<f64>()
            / records.len() as f64
    };
    let quota_grants = kernel_counter(&qos, "qos_quota_granted_insts", 0);
    let l1_hits = sm_counter_sum(&reg, "l1_hits");
    let l1_hit_rate = ratio(l1_hits, l1_hits + sm_counter_sum(&reg, "l1_misses"));
    let l2_hits = machine_counter(&reg, "l2_hits");
    let l2_hit_rate = ratio(l2_hits, l2_hits + machine_counter(&reg, "l2_misses"));

    KernelMetrics {
        name: kt.meta.name.clone(),
        values: [ipc, residency, quota_grants, l1_hit_rate, l2_hit_rate],
    }
}

/// Pearson's r between two equal-length series.
///
/// A zero-variance series has no defined correlation; validation wants
/// "unchanged" to pass and "changed" to fail, so two bitwise-identical
/// degenerate series correlate at 1 and anything else at 0.
#[must_use]
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len(), "correlating unequal series");
    let n = xs.len() as f64;
    if xs.is_empty() {
        return 0.0;
    }
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut sxy = 0.0;
    let mut sxx = 0.0;
    let mut syy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        sxy += (x - mx) * (y - my);
        sxx += (x - mx) * (x - mx);
        syy += (y - my) * (y - my);
    }
    if sxx == 0.0 || syy == 0.0 {
        let identical = xs.iter().zip(ys).all(|(x, y)| x.to_bits() == y.to_bits());
        return if identical { 1.0 } else { 0.0 };
    }
    sxy / (sxx.sqrt() * syy.sqrt())
}

/// The committed per-kernel metric expectations.
#[derive(Debug, Clone, PartialEq)]
pub struct Expectations {
    /// Per-kernel metric vectors, sorted by kernel name.
    pub kernels: Vec<KernelMetrics>,
}

/// Renders expectations as the canonical JSON document. Floats are written
/// twice: human-readable (shortest round-trip) and as raw IEEE bits, which
/// is what the parser reads back, so the round trip is bit-exact.
#[must_use]
pub fn render_expectations(kernels: &[KernelMetrics]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"trace_schema_version\": {TRACE_SCHEMA_VERSION},");
    let _ = writeln!(out, "  \"cycles\": {VALIDATE_CYCLES},");
    out.push_str("  \"kernels\": [\n");
    for (i, k) in kernels.iter().enumerate() {
        let fields = METRICS
            .iter()
            .zip(k.values)
            .map(|(m, v)| format!("\"{m}\": {v}, \"{m}_bits\": {}", v.to_bits()))
            .collect::<Vec<_>>()
            .join(", ");
        let comma = if i + 1 == kernels.len() { "" } else { "," };
        let _ = writeln!(out, "    {{\"name\": \"{}\", {fields}}}{comma}", k.name);
    }
    out.push_str("  ]\n}\n");
    out
}

fn field_u64(line: &str, key: &str) -> Option<u64> {
    let tag = format!("\"{key}\": ");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest.find(|c: char| !c.is_ascii_digit()).unwrap_or(rest.len());
    rest[..end].parse().ok()
}

fn field_str<'a>(line: &'a str, key: &str) -> Option<&'a str> {
    let tag = format!("\"{key}\": \"");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    Some(&rest[..rest.find('"')?])
}

/// Parses an expectations document written by [`render_expectations`].
///
/// # Errors
///
/// Human-readable description of the first malformed line or header field.
pub fn parse_expectations(doc: &str) -> Result<Expectations, String> {
    let header = doc
        .lines()
        .find_map(|l| field_u64(l, "trace_schema_version"))
        .ok_or("expectations file lacks a trace_schema_version header")?;
    if header != u64::from(TRACE_SCHEMA_VERSION) {
        return Err(format!(
            "expectations were blessed for trace schema v{header}, \
             this build writes v{TRACE_SCHEMA_VERSION}; re-bless the corpus"
        ));
    }
    let mut kernels = Vec::new();
    for line in doc.lines().filter(|l| l.contains("\"name\": \"")) {
        let name = field_str(line, "name").ok_or_else(|| format!("malformed line: {line}"))?;
        let mut values = [0.0; METRICS.len()];
        for (slot, metric) in values.iter_mut().zip(METRICS) {
            let bits = field_u64(line, &format!("{metric}_bits"))
                .ok_or_else(|| format!("kernel {name:?} lacks {metric}_bits"))?;
            *slot = f64::from_bits(bits);
        }
        kernels.push(KernelMetrics { name: name.to_string(), values });
    }
    if kernels.is_empty() {
        return Err("expectations file lists no kernels".to_string());
    }
    Ok(Expectations { kernels })
}

/// One metric's row of the correlation table.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricRow {
    /// Metric name from [`METRICS`].
    pub metric: &'static str,
    /// Pearson's r across kernels.
    pub corr: f64,
    /// Worst per-kernel relative error.
    pub max_rel_err: f64,
    /// Kernel with the worst relative error.
    pub worst_kernel: String,
    /// Whether this metric passes both gates.
    pub pass: bool,
}

/// The full validation outcome: one row per metric plus the rendered table.
#[derive(Debug, Clone, PartialEq)]
pub struct ValidationReport {
    /// Per-metric correlation rows, in [`METRICS`] order.
    pub rows: Vec<MetricRow>,
    /// Kernels validated, in corpus order.
    pub kernels: Vec<String>,
}

impl ValidationReport {
    /// Whether every metric passed both gates.
    #[must_use]
    pub fn ok(&self) -> bool {
        self.rows.iter().all(|r| r.pass)
    }

    /// Renders the human-readable correlation table (the command's stdout).
    #[must_use]
    pub fn render(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "trace-replay validation: {} kernels x {} metrics, {} cycles each",
            self.kernels.len(),
            self.rows.len(),
            VALIDATE_CYCLES
        );
        let _ = writeln!(out, "kernels: {}", self.kernels.join(" "));
        out.push('\n');
        let _ = writeln!(
            out,
            "{:<14} {:>10} {:>13}  {:<10} status",
            "metric", "corr", "max_rel_err", "worst"
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "{:<14} {:>10.6} {:>13.3e}  {:<10} {}",
                r.metric,
                r.corr,
                r.max_rel_err,
                r.worst_kernel,
                if r.pass { "ok" } else { "FAIL" }
            );
        }
        out.push('\n');
        let _ = writeln!(
            out,
            "overall: {} (gates: corr >= {CORR_THRESHOLD}, rel err <= {MAX_REL_ERR})",
            if self.ok() { "PASS" } else { "FAIL" }
        );
        out
    }
}

/// Correlates replayed metrics against expectations, metric by metric.
///
/// # Errors
///
/// A kernel-set mismatch between the corpus and the expectations file.
pub fn correlate(
    actual: &[KernelMetrics],
    expected: &Expectations,
) -> Result<ValidationReport, String> {
    let names: Vec<&str> = actual.iter().map(|k| k.name.as_str()).collect();
    let expected_names: Vec<&str> = expected.kernels.iter().map(|k| k.name.as_str()).collect();
    if names != expected_names {
        return Err(format!(
            "kernel sets differ\n  corpus:       {}\n  expectations: {}\n\
             re-bless with: repro validate --bless",
            names.join(" "),
            expected_names.join(" ")
        ));
    }
    let mut rows = Vec::new();
    for (m, metric) in METRICS.iter().enumerate() {
        let xs: Vec<f64> = actual.iter().map(|k| k.values[m]).collect();
        let ys: Vec<f64> = expected.kernels.iter().map(|k| k.values[m]).collect();
        let corr = pearson(&xs, &ys);
        let (worst_kernel, max_rel_err) = xs
            .iter()
            .zip(&ys)
            .zip(&names)
            .map(|((&x, &y), &name)| {
                let scale = y.abs().max(1e-12);
                (name, (x - y).abs() / scale)
            })
            .max_by(|a, b| a.1.total_cmp(&b.1))
            .map_or(("", 0.0), |(n, e)| (n, e));
        rows.push(MetricRow {
            metric,
            corr,
            max_rel_err,
            worst_kernel: worst_kernel.to_string(),
            pass: corr >= CORR_THRESHOLD && max_rel_err <= MAX_REL_ERR,
        });
    }
    Ok(ValidationReport { rows, kernels: names.iter().map(|n| n.to_string()).collect() })
}

fn load_corpus(dir: &Path) -> Result<TraceLibrary, String> {
    let lib = TraceLibrary::load_dir(dir)
        .map_err(|e| format!("cannot load trace corpus from {}: {e}", dir.display()))?;
    if lib.is_empty() {
        return Err(format!(
            "no .fgtr traces under {}; seed the corpus with: repro validate --recapture",
            dir.display()
        ));
    }
    Ok(lib)
}

/// Loads the corpus under `dir`, replays it on `cfg`, and correlates
/// against the expectations file beside it.
///
/// # Errors
///
/// A missing/corrupt corpus or expectations file, or a kernel-set mismatch.
pub fn run_validation_in(dir: &Path, cfg: &GpuConfig) -> Result<ValidationReport, String> {
    let lib = load_corpus(dir)?;
    let path = expectations_in(dir);
    let doc = std::fs::read_to_string(&path).map_err(|e| {
        format!("cannot read {}: {e}\nbless with: repro validate --bless", path.display())
    })?;
    let expected = parse_expectations(&doc)?;
    let actual: Vec<KernelMetrics> = lib.traces().iter().map(|t| replay_metrics(t, cfg)).collect();
    correlate(&actual, &expected)
}

/// [`run_validation_in`] on the committed corpus.
///
/// # Errors
///
/// See [`run_validation_in`].
pub fn run_validation_with(cfg: &GpuConfig) -> Result<ValidationReport, String> {
    run_validation_in(&validate_dir(), cfg)
}

/// [`run_validation_with`] on the canonical tiny configuration.
///
/// # Errors
///
/// See [`run_validation_with`].
pub fn run_validation() -> Result<ValidationReport, String> {
    run_validation_with(&GpuConfig::tiny())
}

/// Refuses to bless when any on-disk trace was written by a different trace
/// schema version than this build: blessing would pin expectations against
/// a corpus the strict reader is about to reject (or silently reinterpret
/// after a future migration).
fn check_corpus_version(dir: &Path) -> Result<(), String> {
    let entries =
        std::fs::read_dir(dir).map_err(|e| format!("cannot read {}: {e}", dir.display()))?;
    for entry in entries.filter_map(Result::ok) {
        let path = entry.path();
        if path.extension().is_none_or(|ext| ext != "fgtr") {
            continue;
        }
        let bytes =
            std::fs::read(&path).map_err(|e| format!("cannot read {}: {e}", path.display()))?;
        let found = trace::peek_version(&bytes).map_err(|e| format!("{}: {e}", path.display()))?;
        if found != TRACE_SCHEMA_VERSION {
            return Err(format!(
                "refusing to bless: {} is trace schema v{found}, this build writes \
                 v{TRACE_SCHEMA_VERSION}; re-record the corpus with: repro validate --recapture",
                path.display()
            ));
        }
    }
    Ok(())
}

/// Regenerates the expectations file beside the corpus under `dir`,
/// atomically (tmp + fsync + rename). Refuses on a trace-schema mismatch.
///
/// # Errors
///
/// Schema mismatch, unreadable corpus, or filesystem errors.
pub fn bless_dir(dir: &Path) -> Result<(), String> {
    check_corpus_version(dir)?;
    let lib = load_corpus(dir)?;
    let cfg = GpuConfig::tiny();
    let actual: Vec<KernelMetrics> = lib.traces().iter().map(|t| replay_metrics(t, &cfg)).collect();
    let path = expectations_in(dir);
    crate::export::write_atomic(&path, render_expectations(&actual).as_bytes())
        .map_err(|e| format!("cannot write {}: {e}", path.display()))
}

/// [`bless_dir`] on the committed corpus.
///
/// # Errors
///
/// See [`bless_dir`].
pub fn bless() -> Result<(), String> {
    bless_dir(&validate_dir())
}

/// Re-records the corpus under `dir` from the synthetic Parboil models
/// (capture on the tiny configuration, one `.fgtr` per model, written
/// atomically), then blesses fresh expectations against it.
///
/// # Errors
///
/// Capture failures (a too-short window) or filesystem errors.
pub fn recapture_in(dir: &Path) -> Result<(), String> {
    std::fs::create_dir_all(dir).map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    let cfg = GpuConfig::tiny();
    for name in workloads::NAMES {
        let desc = workloads::by_name(name).expect("NAMES entries are known");
        let kt = trace::capture(&desc, &cfg, trace::DEFAULT_CAPTURE_CYCLES)
            .map_err(|e| format!("capturing {name}: {e}"))?;
        let path = dir.join(format!("{name}.fgtr"));
        trace::save_atomic(&path, &kt)
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
    }
    bless_dir(dir)
}

/// [`recapture_in`] on the committed corpus.
///
/// # Errors
///
/// See [`recapture_in`].
pub fn recapture() -> Result<(), String> {
    recapture_in(&validate_dir())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_basics() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let up = [2.0, 4.0, 6.0, 8.0];
        let down = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &up) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &down) + 1.0).abs() < 1e-12);
        let flat = [5.0, 5.0, 5.0, 5.0];
        assert_eq!(pearson(&flat, &flat), 1.0, "identical degenerate series pass");
        assert_eq!(pearson(&flat, &xs), 0.0, "changed degenerate series fail");
        assert_eq!(pearson(&[], &[]), 0.0);
    }

    #[test]
    fn expectations_round_trip_bit_exactly() {
        let kernels = vec![
            KernelMetrics { name: "a".into(), values: [0.1, 2.5, 3e7, 0.75, 0.5] },
            KernelMetrics {
                name: "b".into(),
                values: [f64::MIN_POSITIVE, 0.0, 1.0, 0.999_999, 1.0 / 3.0],
            },
        ];
        let doc = render_expectations(&kernels);
        let back = parse_expectations(&doc).expect("parse");
        assert_eq!(back.kernels, kernels, "floats survive via their bit patterns");
    }

    #[test]
    fn parse_rejects_wrong_schema_and_garbage() {
        let doc = render_expectations(&[KernelMetrics { name: "a".into(), values: [0.0; 5] }]);
        let stale = doc.replace(
            &format!("\"trace_schema_version\": {TRACE_SCHEMA_VERSION}"),
            "\"trace_schema_version\": 999",
        );
        assert!(parse_expectations(&stale).unwrap_err().contains("v999"));
        assert!(parse_expectations("{}").is_err());
        let truncated = doc.replace("ipc_bits", "ipc_bats");
        assert!(parse_expectations(&truncated).unwrap_err().contains("ipc_bits"));
    }

    #[test]
    fn correlate_flags_drift_and_name_mismatch() {
        let base: Vec<KernelMetrics> = (0..5)
            .map(|i| KernelMetrics {
                name: format!("k{i}"),
                values: [i as f64 + 1.0, 2.0 * i as f64 + 3.0, 100.0 * (i + 1) as f64, 0.5, 0.25],
            })
            .collect();
        let expected = Expectations { kernels: base.clone() };
        let report = correlate(&base, &expected).expect("same kernels");
        assert!(report.ok(), "identical metrics must pass:\n{}", report.render());

        // A uniform 2x shift keeps corr = 1 but trips the rel-err gate.
        let mut shifted = base.clone();
        for k in &mut shifted {
            k.values[2] *= 2.0;
        }
        let report = correlate(&shifted, &expected).expect("same kernels");
        assert!(!report.ok());
        let row = &report.rows[2];
        assert!(row.corr > 0.999, "uniform scaling preserves correlation");
        assert!(row.max_rel_err > MAX_REL_ERR);
        assert!(report.render().contains("FAIL"));

        let mut renamed = base;
        renamed[0].name = "other".into();
        assert!(correlate(&renamed, &expected).unwrap_err().contains("kernel sets differ"));
    }
}
