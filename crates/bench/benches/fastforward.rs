//! Wall-clock benchmark of the idle-cycle fast-forward (DESIGN.md §3).
//!
//! Runs each scenario four ways — naive per-cycle stepping, fast-forward,
//! fast-forward with the flight recorder on, and fast-forward with the full
//! telemetry stack armed (counter time series + host profiler) — verifies
//! the runs are observably identical, and writes the timings to
//! `BENCH_fastforward.json` (override the path with the first CLI
//! argument). CI's bench-smoke job uploads that file so the perf trajectory
//! of the simulator is tracked from PR to PR; the committed baseline at the
//! repo root records the speedup this change landed with. The
//! `trace_overhead` column bounds the cost of the disabled recorder and
//! `telemetry_overhead` the cost of the armed telemetry stack: bench-smoke
//! fails if the telemetry-off path (`fast_forward_ms`, telemetry compiled
//! in but disarmed) regresses more than 5% against the committed baseline.

use std::time::Instant;

use gpu_sim::kernel::{AccessPattern, KernelDesc, Op};
use gpu_sim::{Gpu, GpuConfig, NullController, SharingMode, TraceLevel};
use qos_core::{QosManager, QosSpec, QuotaScheme};

const MIB: u64 = 1 << 20;

const CYCLES: u64 = 80_000;
/// Timed repetitions per configuration; the minimum is reported.
const REPS: u32 = 3;

/// Pre-refactor dense-path baselines, in milliseconds: the fast-forward leg
/// of each busy-path scenario, measured from the commit preceding the
/// struct-of-arrays refactor (DESIGN.md §18) by running its bench binary
/// interleaved with the refactored one on the same host and taking the
/// median of the alternating rounds (EXPERIMENTS.md has the raw tables and
/// methodology — interleaving is the only way the 1-core bench host yields
/// comparable numbers). Hard-coded so the `dense_path` rows keep reporting
/// the refactor's speedup after the pre-refactor binary is gone; the CI
/// gate compares `wall_ms` against the committed baseline JSON instead,
/// so these constants never mask a fresh regression.
const DENSE_PATH_BASELINES: [(&str, f64); 2] =
    [("smk_memory_pair", 239.7), ("isolated_compute", 338.8)];

struct Scenario {
    name: &'static str,
    run: fn(Mode) -> Outcome,
}

/// One timed configuration of a scenario.
#[derive(Clone, Copy)]
enum Mode {
    Naive,
    FastForward,
    /// Fast-forward with the event ring recording (`TraceLevel::Events`).
    Traced,
    /// Fast-forward with the telemetry stack armed: per-epoch counter
    /// series sampling plus the host-time self-profiler.
    Telemetry,
}

impl Mode {
    fn apply(self, cfg: &mut GpuConfig) {
        cfg.fast_forward = !matches!(self, Mode::Naive);
        if matches!(self, Mode::Traced) {
            cfg.trace.level = TraceLevel::Events;
        }
    }

    /// Runtime arming that config can't express: series + profiler.
    fn arm(self, gpu: &mut Gpu) {
        if matches!(self, Mode::Telemetry) {
            gpu.enable_metrics_series(4096);
            gpu.set_profiling(true);
        }
    }
}

/// Checksum + skip telemetry from one run.
struct Outcome {
    total_insts: u64,
    skipped: u64,
}

fn finish(gpu: &Gpu) -> Outcome {
    Outcome { total_insts: gpu.stats().total_thread_insts(), skipped: gpu.skipped_cycles() }
}

/// A single-warp-per-TB kernel chasing random addresses through a
/// cache-defeating footprint: every access rides the full DRAM latency and
/// each TB holds only one warp, so occupancy stays minimal.
fn pointer_chase(name: &str, seed: u64) -> KernelDesc {
    KernelDesc::builder(name)
        .threads_per_tb(32)
        .grid_tbs(1024)
        .iterations(64)
        .seed(seed)
        .memory_intensive(true)
        .body(vec![Op::mem_load(AccessPattern::random(512 * MIB, 1)), Op::alu(1, 1)])
        .build()
}

/// The acceptance scenario: a latency-bound SMK pair at minimal occupancy.
/// With ~2 warps per SM all stalled on ~340-cycle DRAM round trips, wake-ups
/// are sparse machine-wide and most cycles are idle-skippable.
fn smk_latency_pair(mode: Mode) -> Outcome {
    let mut cfg = GpuConfig::paper_table1();
    mode.apply(&mut cfg);
    let mut gpu = Gpu::new(cfg);
    let a = gpu.launch(pointer_chase("chase-a", 0xFF01));
    let b = gpu.launch(pointer_chase("chase-b", 0xFF02));
    gpu.set_sharing_mode(SharingMode::Smk);
    for sm in gpu.sm_ids().collect::<Vec<_>>() {
        gpu.set_tb_target(sm, a, 1);
        gpu.set_tb_target(sm, b, 1);
    }
    mode.arm(&mut gpu);
    gpu.run(CYCLES, &mut NullController);
    finish(&gpu)
}

/// A bandwidth-saturated SMK pair: wake-ups are dense (a DRAM channel
/// completes a transaction every few cycles), so idle windows are short.
/// Included to show fast-forward does not regress the saturated regime.
fn smk_memory_pair(mode: Mode) -> Outcome {
    let mut cfg = GpuConfig::paper_table1();
    mode.apply(&mut cfg);
    let mut gpu = Gpu::new(cfg);
    let a = gpu.launch(workloads::by_name("lbm").expect("known"));
    let b = gpu.launch(workloads::by_name("spmv").expect("known"));
    gpu.set_sharing_mode(SharingMode::Smk);
    for sm in gpu.sm_ids().collect::<Vec<_>>() {
        gpu.set_tb_target(sm, a, 5);
        gpu.set_tb_target(sm, b, 5);
    }
    mode.arm(&mut gpu);
    gpu.run(CYCLES, &mut NullController);
    finish(&gpu)
}

/// A quota-managed pair: fast-forward must also pay off when the QoS
/// manager's gating makes warps quota-inert rather than operand-stalled.
fn managed_rollover_pair(mode: Mode) -> Outcome {
    let mut cfg = GpuConfig::paper_table1();
    mode.apply(&mut cfg);
    let mut gpu = Gpu::new(cfg);
    let q = gpu.launch(workloads::by_name("mri-q").expect("known"));
    let be = gpu.launch(workloads::by_name("lbm").expect("known"));
    let mut mgr = QosManager::new(QuotaScheme::Rollover)
        .with_kernel(q, QosSpec::qos(600.0))
        .with_kernel(be, QosSpec::best_effort());
    mode.arm(&mut gpu);
    gpu.run(CYCLES, &mut mgr);
    finish(&gpu)
}

/// Compute-bound isolated run: the worst case for fast-forward (few idle
/// windows), included to bound the overhead of the horizon scans.
fn isolated_compute(mode: Mode) -> Outcome {
    let mut cfg = GpuConfig::paper_table1();
    mode.apply(&mut cfg);
    let mut gpu = Gpu::new(cfg);
    gpu.launch(workloads::by_name("sgemm").expect("known"));
    mode.arm(&mut gpu);
    gpu.run(CYCLES, &mut NullController);
    finish(&gpu)
}

/// The datacenter-trio golden scenario stepped serially or with concurrent
/// SM domains (`GpuConfig::intra_parallel`). Fast-forward is on in both
/// runs, so the stepping strategy is the only variable; the wall-clock
/// ratio is the tentpole's win and the instruction checksum its safety.
fn datacenter_trio_stepping(intra_parallel: bool) -> Outcome {
    let mut cfg = GpuConfig::paper_table1();
    cfg.fast_forward = true;
    cfg.intra_parallel = intra_parallel;
    let mut gpu = Gpu::new(cfg);
    let q1 = gpu.launch(workloads::by_name("mri-q").expect("known"));
    let q2 = gpu.launch(workloads::by_name("sad").expect("known"));
    let be = gpu.launch(workloads::by_name("lbm").expect("known"));
    let mut mgr = QosManager::new(QuotaScheme::Rollover)
        .with_kernel(q1, QosSpec::qos(40.0))
        .with_kernel(q2, QosSpec::qos(20.0))
        .with_kernel(be, QosSpec::best_effort());
    gpu.run(CYCLES, &mut mgr);
    finish(&gpu)
}

fn time_min(f: impl Fn() -> Outcome) -> (f64, Outcome) {
    let mut best = f64::INFINITY;
    let mut outcome = Outcome { total_insts: 0, skipped: 0 };
    for _ in 0..REPS {
        let t = Instant::now();
        outcome = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
    }
    (best, outcome)
}

fn main() {
    // cargo bench forwards harness flags like `--bench`; skip them.
    let out_path = std::env::args()
        .skip(1)
        .find(|a| !a.starts_with('-'))
        .unwrap_or_else(|| "BENCH_fastforward.json".to_string());
    let scenarios = [
        Scenario { name: "smk_latency_pair", run: smk_latency_pair },
        Scenario { name: "smk_memory_pair", run: smk_memory_pair },
        Scenario { name: "managed_rollover_pair", run: managed_rollover_pair },
        Scenario { name: "isolated_compute", run: isolated_compute },
    ];
    let mut rows = Vec::new();
    let mut ff_wall = Vec::new();
    for s in &scenarios {
        let (naive_ms, naive) = time_min(|| (s.run)(Mode::Naive));
        let (ff_ms, ff) = time_min(|| (s.run)(Mode::FastForward));
        ff_wall.push((s.name, ff_ms));
        let (traced_ms, traced) = time_min(|| (s.run)(Mode::Traced));
        let (telemetry_ms, telemetry) = time_min(|| (s.run)(Mode::Telemetry));
        assert_eq!(
            naive.total_insts, ff.total_insts,
            "{}: fast-forward diverged from naive stepping",
            s.name
        );
        assert_eq!(
            ff.total_insts, traced.total_insts,
            "{}: event recording perturbed the simulation",
            s.name
        );
        assert_eq!(
            ff.total_insts, telemetry.total_insts,
            "{}: armed telemetry perturbed the simulation",
            s.name
        );
        assert_eq!(
            ff.skipped, telemetry.skipped,
            "{}: armed telemetry changed fast-forward behaviour",
            s.name
        );
        let speedup = naive_ms / ff_ms;
        let trace_overhead = traced_ms / ff_ms - 1.0;
        let telemetry_overhead = telemetry_ms / ff_ms - 1.0;
        let skipped_pct = 100.0 * ff.skipped as f64 / CYCLES as f64;
        println!(
            "{:<24} naive {naive_ms:>8.1} ms   fast-forward {ff_ms:>8.1} ms   \
             {speedup:.2}x   ({skipped_pct:.1}% cycles skipped)   \
             traced {traced_ms:>8.1} ms ({:+.1}%)   telemetry {telemetry_ms:>8.1} ms ({:+.1}%)",
            s.name,
            100.0 * trace_overhead,
            100.0 * telemetry_overhead
        );
        rows.push(format!(
            "    {{\"name\": \"{}\", \"naive_ms\": {naive_ms:.3}, \"fast_forward_ms\": \
             {ff_ms:.3}, \"speedup\": {speedup:.3}, \"skipped_cycles\": {}, \
             \"identical\": true, \"traced_ms\": {traced_ms:.3}, \
             \"trace_overhead\": {trace_overhead:.4}, \"telemetry_ms\": {telemetry_ms:.3}, \
             \"telemetry_overhead\": {telemetry_overhead:.4}}}",
            s.name, ff.skipped
        ));
    }
    // Stepping-strategy leg: one machine, serial vs. concurrent SM-domain
    // stepping. Lives under its own key, sibling to "scenarios", so the CI
    // gate's schema over the fast-forward rows is untouched.
    let host_threads = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let (serial_ms, serial) = time_min(|| datacenter_trio_stepping(false));
    let (parallel_ms, parallel) = time_min(|| datacenter_trio_stepping(true));
    assert_eq!(serial.total_insts, parallel.total_insts, "parallel stepping diverged from serial");
    assert_eq!(serial.skipped, parallel.skipped, "parallel stepping skipped differently");
    let stepping_speedup = serial_ms / parallel_ms;
    println!(
        "{:<24} serial {serial_ms:>8.1} ms   parallel {parallel_ms:>8.1} ms   \
         {stepping_speedup:.2}x   ({host_threads} host thread(s))",
        "datacenter_trio/step"
    );
    // Dense-path leg (DESIGN.md §18.6): the busy scenarios' fast-forward
    // walls against the held pre-refactor baselines. `wall_ms` is this
    // run's measurement (what CI gates at 5%); `pre_refactor_ms` is the
    // frozen baseline and `speedup` the layout refactor's standing win.
    let mut dense_rows = Vec::new();
    for (name, pre_ms) in DENSE_PATH_BASELINES {
        let (_, wall_ms) =
            *ff_wall.iter().find(|(n, _)| *n == name).expect("dense scenario timed above");
        let speedup = pre_ms / wall_ms;
        println!(
            "{:<24} wall {wall_ms:>8.1} ms   pre-refactor {pre_ms:>8.1} ms   {speedup:.2}x",
            format!("{name}/dense")
        );
        dense_rows.push(format!(
            "    {{\"name\": \"{name}\", \"wall_ms\": {wall_ms:.3}, \
             \"pre_refactor_ms\": {pre_ms:.3}, \"speedup\": {speedup:.3}}}"
        ));
    }
    let json = format!(
        "{{\n  \"bench\": \"fastforward\",\n  \"cycles\": {CYCLES},\n  \"reps\": {REPS},\n  \
         \"parallel_stepping\": {{\"scenario\": \"datacenter_trio\", \"host_threads\": \
         {host_threads}, \"serial_ms\": {serial_ms:.3}, \"parallel_ms\": {parallel_ms:.3}, \
         \"speedup\": {stepping_speedup:.3}, \"identical\": true}},\n  \
         \"dense_path\": [\n{}\n  ],\n  \
         \"scenarios\": [\n{}\n  ]\n}}\n",
        dense_rows.join(",\n"),
        rows.join(",\n")
    );
    std::fs::write(&out_path, json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
