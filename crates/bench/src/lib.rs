//! Criterion benchmark crate.
//!
//! The benches live in `benches/`:
//!
//! * `figures` — one benchmark per paper table/figure, running the
//!   corresponding [`harness::experiments`] regenerator at
//!   [`harness::RunScale::Bench`] scale and printing the same rows the
//!   `repro` binary prints at larger scales,
//! * `simulator` — micro-benchmarks of the simulator substrate (isolated
//!   kernel runs, SMK co-runs, preemption churn),
//! * `fastforward` — naive vs. idle fast-forward stepping (DESIGN.md §3.1)
//!   over latency-bound, bandwidth-saturated, managed and compute-bound
//!   scenarios, asserting bit-identical results and writing the timings to
//!   `BENCH_fastforward.json` (CI uploads it; the repo root holds the
//!   blessed baseline).
//!
//! `simulator` also carries a `trace_replay` group timing the FGTR codec
//! round trip and a replayed-trace kernel run against its synthetic twin.

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// Re-exported so the benches share one definition of the bench scale.
pub use harness::RunScale;

/// The scale every figure bench runs at.
pub const BENCH_SCALE: RunScale = RunScale::Bench;
