//! A streaming multiprocessor: occupancy, warp issue, quota gating.
//!
//! The SM executes resident thread blocks' warps under a warp-scheduling
//! policy, gated by the per-kernel *quota counters* that implement the
//! paper's Enhanced Warp Scheduler (EWS): a kernel whose counter is
//! exhausted is simply skipped by the (otherwise unmodified) scheduler.
//! Mid-epoch refill rules (non-QoS top-up, elastic epoch restart) are
//! evaluated lazily when a blocked warp is encountered, so the per-cycle
//! issue loop stays branch-light.

use std::sync::Arc;

use crate::cache::Cache;
use crate::config::GpuConfig;
use crate::health::{AuditKind, WarpStallCounts};
use crate::kernel::{KernelDesc, MemSpace, Op};
use crate::memsys::MemSystem;
use crate::observe::{EventRing, TraceEvent, TraceEventKind};
use crate::preempt::{PreemptStats, SavedTb};
use crate::rng::derive_seed;
use crate::tb::{TbPhase, TbState};
use crate::types::{per_kernel, Cycle, KernelId, PerKernel, SmId, TbIndex};
use crate::warp::{WarpProgress, WarpState};
use crate::warp_sched::{choose, Candidate, SchedPolicy, SchedulerState};
use crate::MAX_KERNELS;

/// How an epoch-boundary quota assignment treats the previous counter value.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum QuotaCarry {
    /// Discard unused (positive) quota, keep over-consumption debt:
    /// `C ← alloc + min(C, 0)` (Naïve/Elastic behaviour, and non-QoS kernels
    /// under every scheme — Fig. 4a/4c).
    DiscardSurplus,
    /// Keep debt and the unused quota *from the last epoch* (Rollover,
    /// Fig. 4c): `C ← alloc + min(C, alloc)`. Capping the carried surplus at
    /// one allocation keeps a long TLP-starved transient from stockpiling
    /// epochs' worth of quota that would later let the kernel run far past
    /// its goal.
    Full,
    /// Fresh counter every epoch: `C ← alloc`. Used for non-QoS kernels,
    /// whose work-conserving slack issues would otherwise accumulate
    /// unbounded debt that locks them out of the normal issue path.
    Reset,
}

/// Per-kernel issue counters of one SM for one epoch.
#[derive(Debug, Clone, Copy, Default)]
pub struct SmKernelCounters {
    /// Thread-level instructions issued (what quotas count).
    pub thread_insts: u64,
    /// Warp-level instructions issued.
    pub warp_insts: u64,
}

/// A streaming multiprocessor.
#[derive(Debug)]
pub struct Sm {
    id: SmId,
    policy: SchedPolicy,
    num_scheds: u16,
    max_warps: u16,
    max_tbs: u16,
    max_threads: u32,
    regfile_bytes: u64,
    smem_bytes: u64,

    l1: Cache,
    descs: PerKernel<Option<Arc<KernelDesc>>>,

    used_threads: u32,
    used_regs: u64,
    used_smem: u64,

    warps: Vec<Option<WarpState>>,
    tbs: Vec<Option<TbState>>,
    free_warps: Vec<u16>,
    free_tbs: Vec<u16>,
    scheds: Vec<SchedulerState>,
    next_age: u64,
    transitioning: Vec<u16>,

    // --- quota state (EWS) ---
    quota: PerKernel<i64>,
    gated: PerKernel<bool>,
    refill: PerKernel<i64>,
    is_qos: PerKernel<bool>,
    elastic: bool,
    priority_block: bool,

    // --- quota double-entry ledger (audit mode) ---
    // Every change to `quota` flows through exactly two channels: credits
    // (epoch grants, mid-epoch refills) and debits (issued lanes while
    // gated). `quota[k] == quota_credit[k] - quota_debit[k]` is then a
    // conservation law any stray mutation breaks.
    quota_credit: PerKernel<i64>,
    quota_debit: PerKernel<i64>,

    // --- injected faults ---
    quota_frozen: bool,
    sched_frozen: bool,
    preempt_stalled: bool,

    // --- statistics ---
    hosted: PerKernel<u16>,
    counters: PerKernel<SmKernelCounters>,
    alu_thread_insts: PerKernel<u64>,
    sfu_thread_insts: PerKernel<u64>,
    smem_accesses: PerKernel<u64>,
    busy_cycles: u64,
    issue_slots: u64,
    issued_total: u64,
    idle_warp_acc: PerKernel<u64>,
    idle_samples: u64,
    preempt_stats: PreemptStats,

    // --- observability (counter registry + flight recorder, DESIGN.md §12) ---
    trace_on: bool,
    events: EventRing,
    quota_blocked: PerKernel<u64>,
    quota_exhaustions: PerKernel<u64>,
    scoreboard_waits: PerKernel<u64>,

    // --- outboxes drained by the TB scheduler ---
    completed: Vec<(KernelId, TbIndex)>,
    saved: Vec<(KernelId, SavedTb)>,

    ready_buf: Vec<Candidate>,
}

impl Sm {
    /// Builds an SM from the GPU configuration.
    pub fn new(id: SmId, cfg: &GpuConfig) -> Self {
        let max_warps = cfg.sm.max_warps() as u16;
        let max_tbs = cfg.sm.max_tbs as u16;
        Sm {
            id,
            policy: cfg.sm.sched_policy,
            num_scheds: cfg.sm.warp_schedulers as u16,
            max_warps,
            max_tbs,
            max_threads: cfg.sm.max_threads,
            regfile_bytes: cfg.sm.register_file_bytes,
            smem_bytes: cfg.sm.shared_mem_bytes,
            l1: Cache::new(cfg.mem.l1_bytes, cfg.mem.l1_ways, cfg.mem.line_bytes),
            descs: per_kernel(|_| None),
            used_threads: 0,
            used_regs: 0,
            used_smem: 0,
            warps: (0..max_warps).map(|_| None).collect(),
            tbs: (0..max_tbs).map(|_| None).collect(),
            free_warps: (0..max_warps).rev().collect(),
            free_tbs: (0..max_tbs).rev().collect(),
            scheds: vec![SchedulerState::default(); cfg.sm.warp_schedulers as usize],
            next_age: 0,
            transitioning: Vec::new(),
            quota: per_kernel(|_| 0),
            gated: per_kernel(|_| false),
            refill: per_kernel(|_| 0),
            is_qos: per_kernel(|_| false),
            elastic: false,
            priority_block: false,
            quota_credit: per_kernel(|_| 0),
            quota_debit: per_kernel(|_| 0),
            quota_frozen: false,
            sched_frozen: false,
            preempt_stalled: false,
            hosted: per_kernel(|_| 0),
            counters: per_kernel(|_| SmKernelCounters::default()),
            alu_thread_insts: per_kernel(|_| 0),
            sfu_thread_insts: per_kernel(|_| 0),
            smem_accesses: per_kernel(|_| 0),
            busy_cycles: 0,
            issue_slots: 0,
            issued_total: 0,
            idle_warp_acc: per_kernel(|_| 0),
            idle_samples: 0,
            preempt_stats: PreemptStats::default(),
            trace_on: cfg.trace.level.is_on(),
            events: EventRing::new(if cfg.trace.level.is_on() {
                cfg.trace.ring_capacity
            } else {
                0
            }),
            quota_blocked: per_kernel(|_| 0),
            quota_exhaustions: per_kernel(|_| 0),
            scoreboard_waits: per_kernel(|_| 0),
            completed: Vec::new(),
            saved: Vec::new(),
            ready_buf: Vec::with_capacity(max_warps as usize),
        }
    }

    /// This SM's identifier.
    pub fn id(&self) -> SmId {
        self.id
    }

    /// Records a flight-recorder event. A single branch when tracing is off,
    /// so the hot path stays free of ring-buffer work at level `Off`.
    #[inline]
    fn record(&mut self, cycle: Cycle, kind: TraceEventKind) {
        if self.trace_on {
            self.events.push(TraceEvent { cycle, sm: Some(self.id.index() as u32), kind });
        }
    }

    // ------------------------------------------------------------------
    // Kernel registration and occupancy
    // ------------------------------------------------------------------

    /// Registers the kernel description for slot `k` (done once at launch).
    pub(crate) fn set_kernel_desc(&mut self, k: KernelId, desc: Arc<KernelDesc>) {
        self.descs[k.index()] = Some(desc);
    }

    /// Whether one more TB of `desc` fits in the remaining resources.
    pub fn can_host(&self, desc: &KernelDesc) -> bool {
        !self.free_tbs.is_empty()
            && self.free_warps.len() >= desc.warps_per_tb() as usize
            && self.used_threads + desc.threads_per_tb() <= self.max_threads
            && self.used_regs + desc.regfile_bytes_per_tb() <= self.regfile_bytes
            && self.used_smem + desc.smem_per_tb() <= self.smem_bytes
    }

    /// Maximum TBs of `desc` an (empty) SM of this configuration can hold.
    pub fn max_resident_tbs(&self, desc: &KernelDesc) -> u32 {
        let by_tbs = u32::from(self.max_tbs);
        let by_warps = u32::from(self.max_warps) / desc.warps_per_tb();
        let by_threads = self.max_threads / desc.threads_per_tb();
        let by_regs = (self.regfile_bytes / desc.regfile_bytes_per_tb().max(1)) as u32;
        let by_smem = if desc.smem_per_tb() == 0 {
            u32::MAX
        } else {
            (self.smem_bytes / desc.smem_per_tb()) as u32
        };
        by_tbs.min(by_warps).min(by_threads).min(by_regs).min(by_smem)
    }

    /// Number of TBs of kernel `k` currently resident (including loading /
    /// saving ones).
    pub fn hosted_tbs(&self, k: KernelId) -> u32 {
        u32::from(self.hosted[k.index()])
    }

    /// Dispatches one TB of kernel `k`, optionally resuming saved context.
    /// The TB's warps may issue after `load_cost` cycles.
    ///
    /// # Panics
    ///
    /// Panics if the TB does not fit (callers check [`Sm::can_host`]) or the
    /// kernel description was not registered.
    pub(crate) fn dispatch(
        &mut self,
        k: KernelId,
        tb_index: TbIndex,
        resume: Option<SavedTb>,
        now: Cycle,
        load_cost: Cycle,
    ) {
        let desc = self.descs[k.index()].as_ref().expect("kernel desc registered").clone();
        assert!(self.can_host(&desc), "dispatch without capacity on {}", self.id);
        let resumed = resume.is_some();
        let tb_slot = self.free_tbs.pop().expect("free TB slot");
        let warps_per_tb = desc.warps_per_tb() as u16;
        let mut warp_slots = Vec::with_capacity(warps_per_tb as usize);
        let mut warps_done = 0u16;
        let saved_warps = resume.as_ref().map(|s| &s.warps);
        if let Some(s) = &resume {
            assert_eq!(s.tb_index, tb_index, "resume must target the saved TB index");
            assert_eq!(s.warps.len(), warps_per_tb as usize, "saved warp count mismatch");
            self.preempt_stats.resumes += 1;
            self.preempt_stats.transfer_cycles += load_cost;
        }
        for wi in 0..warps_per_tb {
            let slot = self.free_warps.pop().expect("free warp slot");
            let warp_uid = u64::from(tb_index.0) * u64::from(warps_per_tb) + u64::from(wi);
            let mut w = WarpState {
                kernel: k,
                tb_slot,
                warp_in_tb: wi,
                warp_uid,
                pc: 0,
                rem: 0,
                iter: desc.iterations(),
                ready_at: now + load_cost,
                at_barrier: false,
                done: false,
                seq: 0,
                rng: crate::rng::SplitMix64::new(derive_seed(desc.seed(), warp_uid)),
                age: self.next_age,
            };
            self.next_age += 1;
            if let Some(saved) = saved_warps {
                let p: &WarpProgress = &saved[wi as usize];
                w.pc = p.pc;
                w.rem = p.rem;
                w.iter = p.iter;
                w.seq = p.seq;
                w.done = p.done;
                w.rng = p.rng.clone();
                if p.done {
                    warps_done += 1;
                }
            }
            self.warps[slot as usize] = Some(w);
            warp_slots.push(slot);
        }
        self.used_threads += desc.threads_per_tb();
        self.used_regs += desc.regfile_bytes_per_tb();
        self.used_smem += desc.smem_per_tb();
        self.hosted[k.index()] += 1;
        self.tbs[tb_slot as usize] = Some(TbState {
            kernel: k,
            tb_index,
            warp_slots,
            warps_done,
            barrier_arrived: 0,
            phase: TbPhase::Loading(now + load_cost),
        });
        self.transitioning.push(tb_slot);
        self.record(
            now,
            TraceEventKind::TbDispatch { kernel: k.index() as u32, tb: tb_index.0, resumed },
        );
    }

    /// Starts a partial context switch of one `k` TB (the most recently
    /// dispatched active one). Returns `false` if no active TB of `k` is
    /// resident.
    pub(crate) fn start_preempt(&mut self, k: KernelId, now: Cycle, save_cost: Cycle) -> bool {
        if self.preempt_stalled {
            return false;
        }
        let victim = self
            .tbs
            .iter()
            .enumerate()
            .filter_map(|(i, tb)| tb.as_ref().map(|t| (i, t)))
            .filter(|(_, t)| t.kernel == k && t.phase == TbPhase::Active && !t.finished())
            .map(|(i, t)| (i, t.tb_index.0))
            .max_by_key(|&(_, idx)| idx);
        let Some((slot, victim_tb)) = victim else { return false };
        let tb = self.tbs[slot].as_mut().expect("victim TB present");
        tb.phase = TbPhase::Saving(now + save_cost);
        // Warps parked at a barrier would deadlock the saved context check;
        // the barrier state is recomputed on resume, so release the arrivals.
        tb.barrier_arrived = 0;
        self.preempt_stats.saves += 1;
        self.preempt_stats.transfer_cycles += save_cost;
        self.transitioning.push(slot as u16);
        self.record(now, TraceEventKind::PreemptStart { kernel: k.index() as u32, tb: victim_tb });
        true
    }

    /// Whether any TB is currently loading or saving context.
    pub fn context_switch_in_flight(&self) -> bool {
        self.transitioning.iter().any(|&s| {
            matches!(
                self.tbs[s as usize].as_ref().map(|t| t.phase),
                Some(TbPhase::Saving(_)) | Some(TbPhase::Loading(_))
            )
        })
    }

    // ------------------------------------------------------------------
    // Quota control (the paper's EWS interface)
    // ------------------------------------------------------------------

    /// Enables or disables quota gating for kernel `k` on this SM.
    pub fn set_gated(&mut self, k: KernelId, gated: bool) {
        if self.quota_frozen {
            return;
        }
        self.gated[k.index()] = gated;
    }

    /// Assigns the epoch quota for kernel `k`.
    ///
    /// `carry` selects the paper's carry-over semantics, and `refill` is the
    /// amount added by mid-epoch refills (non-QoS top-ups, elastic restarts).
    pub fn set_epoch_quota(&mut self, k: KernelId, alloc: i64, carry: QuotaCarry, refill: i64) {
        if self.quota_frozen {
            return;
        }
        let i = k.index();
        let old = self.quota[i];
        self.quota[i] = match carry {
            QuotaCarry::DiscardSurplus => alloc + old.min(0),
            QuotaCarry::Full => alloc + old.min(alloc),
            QuotaCarry::Reset => alloc,
        };
        self.quota_credit[i] += self.quota[i] - old;
        self.refill[i] = refill;
    }

    /// Current quota counter for kernel `k`.
    pub fn quota(&self, k: KernelId) -> i64 {
        self.quota[k.index()]
    }

    /// Marks kernel `k` as a QoS kernel (affects mid-epoch refill rules and
    /// the Rollover-Time priority gate).
    pub fn set_qos_kernel(&mut self, k: KernelId, qos: bool) {
        self.is_qos[k.index()] = qos;
    }

    /// Enables elastic-epoch mid-epoch restarts (all gated kernels are
    /// replenished when every one of them is exhausted).
    pub fn set_elastic(&mut self, on: bool) {
        if self.quota_frozen {
            return;
        }
        self.elastic = on;
    }

    /// Enables the Rollover-Time priority gate: non-QoS kernels may only
    /// issue when every gated QoS kernel has exhausted its quota.
    pub fn set_priority_block(&mut self, on: bool) {
        self.priority_block = on;
    }

    #[inline]
    fn any_qos_quota_positive(&self) -> bool {
        (0..MAX_KERNELS).any(|i| self.gated[i] && self.is_qos[i] && self.quota[i] > 0)
    }

    #[inline]
    fn all_gated_exhausted(&self) -> bool {
        (0..MAX_KERNELS).all(|i| !self.gated[i] || self.quota[i] <= 0)
    }

    /// Quota admission check with lazy mid-epoch refills.
    fn quota_allows(&mut self, k: usize) -> bool {
        if self.quota_frozen {
            // Injected StarveQuota fault: every kernel is gated at zero and
            // no refill channel may revive it.
            return !self.gated[k];
        }
        if self.priority_block && !self.is_qos[k] && self.any_qos_quota_positive() {
            return false;
        }
        if !self.gated[k] {
            return true;
        }
        if self.quota[k] > 0 {
            return true;
        }
        if self.elastic {
            // Elastic epoch: a new epoch starts early once *all* kernels
            // have consumed their quotas (Fig. 4b), carrying debt.
            if self.all_gated_exhausted() {
                for i in 0..MAX_KERNELS {
                    if self.gated[i] {
                        self.quota[i] += self.refill[i];
                        self.quota_credit[i] += self.refill[i];
                    }
                }
                return self.quota[k] > 0;
            }
            return false;
        }
        if !self.is_qos[k] && self.refill[k] > 0 && !self.any_qos_quota_positive() {
            // Naïve/Rollover mid-epoch rule: once every QoS kernel reached
            // its per-epoch goal, non-QoS kernels keep running (§3.4.1).
            self.quota[k] += self.refill[k];
            self.quota_credit[k] += self.refill[k];
            return self.quota[k] > 0;
        }
        false
    }

    // ------------------------------------------------------------------
    // Execution
    // ------------------------------------------------------------------

    fn warp_issuable(&self, slot: u16, now: Cycle) -> bool {
        let Some(w) = self.warps[slot as usize].as_ref() else { return false };
        if w.done || w.at_barrier || w.ready_at > now {
            return false;
        }
        self.tbs[w.tb_slot as usize]
            .as_ref()
            .is_some_and(|tb| tb.issuable(now))
    }

    /// Whether a warp of kernel `k` that is otherwise issuable is *inert*:
    /// [`Sm::quota_allows`] would return `false` without mutating any state,
    /// and [`Sm::scavenge`] can never pick it. Inert warps generate no events,
    /// so they do not hold fast-forward back.
    ///
    /// Every input here (quota counters, gates, QoS flags, elastic mode) only
    /// changes through issues, epoch-boundary controller writes, or injected
    /// faults — all of which happen on cycles fast-forward never skips — so
    /// inertness computed at the start of an idle window holds throughout it.
    fn quota_inert(&self, k: usize) -> bool {
        if self.quota_frozen {
            // StarveQuota freezes refills too: gated kernels stay blocked.
            return self.gated[k];
        }
        if self.priority_block && !self.is_qos[k] && self.any_qos_quota_positive() {
            return true;
        }
        if !self.gated[k] || self.quota[k] > 0 {
            return false;
        }
        if !self.is_qos[k] {
            // Exhausted non-QoS kernels stay live: scavenging or the §3.4.1
            // mid-epoch refill may let them issue on any cycle.
            return false;
        }
        // QoS, gated, exhausted: pure-false unless an elastic restart would
        // refill every gated kernel the moment quota_allows is consulted.
        !(self.elastic && self.all_gated_exhausted())
    }

    /// The earliest future cycle at which this SM could change state, or
    /// `None` if it is fully quiescent.
    ///
    /// A returned cycle `<= now` means the SM is busy *right now* (some
    /// non-inert warp can issue this cycle), so fast-forward must not skip
    /// anything. Horizons come from two sources: in-flight context
    /// transitions (whose completion mutates slot state in
    /// `process_transitions`) and stalled warps' `ready_at` scoreboards.
    pub(crate) fn next_event(&self, now: Cycle) -> Option<Cycle> {
        let mut horizon: Option<Cycle> = None;
        for &slot in &self.transitioning {
            if let Some(until) =
                self.tbs[slot as usize].as_ref().and_then(TbState::transition_done_at)
            {
                horizon = Some(horizon.map_or(until, |h| h.min(until)));
            }
        }
        if self.sched_frozen || self.used_threads == 0 {
            // A frozen or empty SM never issues; only transitions can fire.
            return horizon;
        }
        let inert: [bool; MAX_KERNELS] = std::array::from_fn(|k| self.quota_inert(k));
        for w in self.warps.iter().flatten() {
            if inert[w.kernel.index()] {
                continue;
            }
            let Some(tb) = self.tbs[w.tb_slot as usize].as_ref() else { continue };
            if let Some(wake) = w.next_wake(tb.phase) {
                if wake <= now {
                    return Some(wake);
                }
                horizon = Some(horizon.map_or(wake, |h| h.min(wake)));
            }
        }
        horizon
    }

    /// Accounts for the idle cycles `[from, target)` jumped over by
    /// fast-forward, mirroring exactly what per-cycle [`Sm::tick`] calls
    /// would have done: a hosted, unfrozen SM burns busy cycles and empty
    /// issue slots even when no warp can issue, and the gather loop counts
    /// every issuable-but-quota-denied warp once per cycle. Neither the
    /// freeze/occupancy conditions nor kernel inertness can change
    /// mid-window (they only move on simulated cycles), so the quota-blocked
    /// tally is replayed per warp from its scoreboard release to the window
    /// end. Only quota-inert kernels can own issuable warps inside a skipped
    /// window — a non-inert issuable warp would have held fast-forward back
    /// via [`Sm::next_event`] — and transitioning TBs stay un-issuable for
    /// the whole window because their completion is itself a horizon.
    pub(crate) fn note_skipped_cycles(&mut self, from: Cycle, target: Cycle) {
        if self.sched_frozen || self.used_threads == 0 {
            return;
        }
        let skipped = target - from;
        self.busy_cycles += skipped;
        self.issue_slots += skipped * u64::from(self.num_scheds);
        let inert: [bool; MAX_KERNELS] = std::array::from_fn(|k| self.quota_inert(k));
        if !inert.iter().any(|&b| b) {
            return;
        }
        let mut blocked: PerKernel<u64> = per_kernel(|_| 0);
        for w in self.warps.iter().flatten() {
            let k = w.kernel.index();
            if !inert[k] || w.done || w.at_barrier {
                continue;
            }
            let active = self.tbs[w.tb_slot as usize]
                .as_ref()
                .is_some_and(|tb| tb.phase == TbPhase::Active);
            if !active {
                continue;
            }
            let start = from.max(w.ready_at);
            if start < target {
                blocked[k] += target - start;
            }
        }
        for (k, b) in blocked.iter().enumerate() {
            self.quota_blocked[k] += b;
        }
    }

    /// Advances the SM by one cycle.
    pub(crate) fn tick(&mut self, now: Cycle, mem: &mut MemSystem) {
        if !self.transitioning.is_empty() {
            self.process_transitions(now);
        }
        if self.sched_frozen || self.used_threads == 0 {
            return;
        }
        self.busy_cycles += 1;
        self.issue_slots += u64::from(self.num_scheds);

        for sid in 0..self.num_scheds {
            // Gather issuable warps for this scheduler.
            let mut ready = std::mem::take(&mut self.ready_buf);
            ready.clear();
            let mut slot = sid;
            while slot < self.max_warps {
                if self.warp_issuable(slot, now) {
                    let k = self.warps[slot as usize].as_ref().expect("issuable warp").kernel;
                    if self.quota_allows(k.index()) {
                        let age = self.warps[slot as usize].as_ref().expect("warp").age;
                        ready.push((slot, age));
                    } else {
                        self.quota_blocked[k.index()] += 1;
                    }
                }
                slot += self.num_scheds;
            }
            let pick = choose(self.policy, &mut self.scheds[sid as usize], &ready);
            self.ready_buf = ready;
            if let Some(slot) = pick {
                self.issue(slot, now, mem);
                self.issued_total += 1;
            } else if let Some(slot) = self.scavenge(sid, now) {
                // Work-conserving slack reclamation: the slot would idle --
                // no admissible warp is ready -- so a quota-exhausted
                // *non-QoS* warp may use it (QoS kernels stay throttled at
                // their goals; this is the "keep them running" intent of
                // the mid-epoch rule in section 3.4.1). The issue still
                // debits the quota counter, so epoch accounting and the
                // section 3.5 feedback see the true consumption.
                self.issue(slot, now, mem);
                self.issued_total += 1;
            }
        }
    }

    /// Oldest issuable non-QoS warp whose kernel is only blocked by an
    /// exhausted quota; `None` under the Rollover-Time priority gate while
    /// QoS quota remains (strict time multiplexing is that scheme's point).
    fn scavenge(&self, sid: u16, now: Cycle) -> Option<u16> {
        if self.quota_frozen {
            return None;
        }
        if self.priority_block && self.any_qos_quota_positive() {
            return None;
        }
        let mut best: Option<(u16, u64)> = None;
        let mut slot = sid;
        while slot < self.max_warps {
            if self.warp_issuable(slot, now) {
                let w = self.warps[slot as usize].as_ref().expect("issuable warp");
                let k = w.kernel.index();
                if self.gated[k] && !self.is_qos[k] && self.quota[k] <= 0 {
                    match best {
                        Some((_, age)) if age <= w.age => {}
                        _ => best = Some((slot, w.age)),
                    }
                }
            }
            slot += self.num_scheds;
        }
        best.map(|(slot, _)| slot)
    }

    fn process_transitions(&mut self, now: Cycle) {
        let mut i = 0;
        while i < self.transitioning.len() {
            let slot = self.transitioning[i];
            let phase = self.tbs[slot as usize].as_ref().map(|t| t.phase);
            match phase {
                Some(TbPhase::Loading(until)) if now >= until => {
                    self.tbs[slot as usize].as_mut().expect("loading TB").phase = TbPhase::Active;
                    self.transitioning.swap_remove(i);
                }
                Some(TbPhase::Saving(until)) if now >= until => {
                    self.finalize_save(slot, now);
                    self.transitioning.swap_remove(i);
                }
                None => {
                    // The TB completed while transitioning bookkeeping was
                    // pending (cannot normally happen; defensive).
                    self.transitioning.swap_remove(i);
                }
                _ => i += 1,
            }
        }
    }

    fn finalize_save(&mut self, tb_slot: u16, now: Cycle) {
        let tb = self.tbs[tb_slot as usize].take().expect("saving TB present");
        let desc = self.descs[tb.kernel.index()].as_ref().expect("desc").clone();
        let mut warps = Vec::with_capacity(tb.warp_slots.len());
        for &ws in &tb.warp_slots {
            let w = self.warps[ws as usize].take().expect("warp of saving TB");
            warps.push(WarpProgress::capture(&w));
            self.free_warps.push(ws);
        }
        self.release_resources(&desc);
        self.hosted[tb.kernel.index()] -= 1;
        self.free_tbs.push(tb_slot);
        let (kernel, tb_index) = (tb.kernel, tb.tb_index);
        self.saved.push((tb.kernel, SavedTb { tb_index: tb.tb_index, warps }));
        self.record(
            now,
            TraceEventKind::PreemptComplete { kernel: kernel.index() as u32, tb: tb_index.0 },
        );
    }

    fn release_resources(&mut self, desc: &KernelDesc) {
        self.used_threads -= desc.threads_per_tb();
        self.used_regs -= desc.regfile_bytes_per_tb();
        self.used_smem -= desc.smem_per_tb();
    }

    fn issue(&mut self, slot: u16, now: Cycle, mem: &mut MemSystem) {
        let k = self.warps[slot as usize].as_ref().expect("issued warp exists").kernel.index();
        // `Op` is `Copy` and the body length is all the control flow needs,
        // so the hot path avoids cloning the kernel's `Arc`.
        let (op, body_len) = {
            let d = self.descs[k].as_ref().expect("desc");
            let w = self.warps[slot as usize].as_ref().expect("warp");
            (d.body()[w.pc as usize], d.body().len())
        };
        let w = self.warps[slot as usize].as_mut().expect("issued warp exists");

        if w.rem == 0 {
            w.rem = match op {
                Op::Alu { repeat, .. } | Op::Sfu { repeat, .. } => repeat.max(1),
                Op::Mem { .. } | Op::Bar => 1,
            };
        }

        let lanes;
        match op {
            Op::Alu { latency, active_lanes, .. } => {
                lanes = active_lanes;
                w.ready_at = now + Cycle::from(latency.max(1));
                self.alu_thread_insts[k] += u64::from(active_lanes);
            }
            Op::Sfu { latency, active_lanes, .. } => {
                lanes = active_lanes;
                w.ready_at = now + Cycle::from(latency.max(1));
                self.sfu_thread_insts[k] += u64::from(active_lanes);
            }
            Op::Mem { space: MemSpace::Shared, active_lanes, .. } => {
                lanes = active_lanes;
                w.ready_at = now + Cycle::from(mem.config().l1_hit_latency);
                self.smem_accesses[k] += u64::from(active_lanes);
            }
            Op::Mem { space: MemSpace::Global, pattern, active_lanes, .. } => {
                lanes = active_lanes;
                let tb_index = self.tbs[w.tb_slot as usize]
                    .as_ref()
                    .expect("TB of issuing warp")
                    .tb_index
                    .0;
                let mut buf = [0u64; 32];
                let n = w.gen_lines(
                    &pattern,
                    KernelDesc::base_addr(k),
                    mem.config().line_bytes,
                    tb_index,
                    &mut buf,
                );
                w.ready_at = mem.access_lines(w.kernel, &mut self.l1, &buf[..n], now);
            }
            Op::Bar => {
                lanes = crate::WARP_SIZE as u8;
                w.ready_at = now + 1;
            }
        }

        // Retire one dynamic instruction and advance the program counter.
        w.rem -= 1;
        let mut arrived_barrier = false;
        let mut retired = false;
        if w.rem == 0 {
            w.pc += 1;
            if usize::from(w.pc) == body_len {
                w.iter -= 1;
                if w.iter == 0 {
                    w.done = true;
                    retired = true;
                } else {
                    w.pc = 0;
                }
            }
            if matches!(op, Op::Bar) {
                w.at_barrier = true;
                arrived_barrier = true;
            }
        }
        let tb_slot = w.tb_slot;

        self.counters[k].thread_insts += u64::from(lanes);
        self.counters[k].warp_insts += 1;
        if self.gated[k] {
            let before = self.quota[k];
            self.quota[k] -= i64::from(lanes);
            self.quota_debit[k] += i64::from(lanes);
            if before > 0 && self.quota[k] <= 0 {
                self.quota_exhaustions[k] += 1;
                self.record(now, TraceEventKind::QuotaExhausted { kernel: k as u32 });
            }
        }

        if arrived_barrier {
            self.note_barrier_arrival(tb_slot, now);
        }
        if retired {
            self.note_warp_retired(tb_slot, now);
        }
    }

    fn note_barrier_arrival(&mut self, tb_slot: u16, now: Cycle) {
        let tb = self.tbs[tb_slot as usize].as_mut().expect("TB at barrier");
        tb.barrier_arrived += 1;
        let live = tb.warp_slots.len() as u16 - tb.warps_done;
        if tb.barrier_arrived >= live {
            tb.barrier_arrived = 0;
            let slots = tb.warp_slots.clone();
            for ws in slots {
                if let Some(w) = self.warps[ws as usize].as_mut() {
                    if w.at_barrier {
                        w.at_barrier = false;
                        w.ready_at = w.ready_at.max(now + 1);
                    }
                }
            }
        }
    }

    fn note_warp_retired(&mut self, tb_slot: u16, now: Cycle) {
        let finished = {
            let tb = self.tbs[tb_slot as usize].as_mut().expect("TB of retiring warp");
            tb.warps_done += 1;
            tb.finished()
        };
        if finished {
            let tb = self.tbs[tb_slot as usize].take().expect("finished TB");
            let desc = self.descs[tb.kernel.index()].as_ref().expect("desc").clone();
            for &ws in &tb.warp_slots {
                self.warps[ws as usize] = None;
                self.free_warps.push(ws);
            }
            self.release_resources(&desc);
            self.hosted[tb.kernel.index()] -= 1;
            self.free_tbs.push(tb_slot);
            self.record(
                now,
                TraceEventKind::TbDrain { kernel: tb.kernel.index() as u32, tb: tb.tb_index.0 },
            );
            self.completed.push((tb.kernel, tb.tb_index));
        }
    }

    // ------------------------------------------------------------------
    // Fault injection, audits, and health introspection
    // ------------------------------------------------------------------

    /// Injected `StarveQuota` fault: gates every kernel at zero quota and
    /// freezes all quota writes and refill channels, so no controller can
    /// revive issue on this SM.
    pub(crate) fn freeze_all_quota(&mut self) {
        for i in 0..MAX_KERNELS {
            self.gated[i] = true;
            let old = self.quota[i];
            self.quota[i] = old.min(0);
            self.quota_credit[i] += self.quota[i] - old;
            self.refill[i] = 0;
        }
        self.elastic = false;
        self.quota_frozen = true;
    }

    /// Injected `FreezeScheduler` fault: the SM stops issuing forever
    /// (in-flight context transfers still retire).
    pub(crate) fn freeze_schedulers(&mut self) {
        self.sched_frozen = true;
    }

    /// Injected `StallPreemption` fault: `start_preempt` refuses new saves.
    pub(crate) fn stall_preemption(&mut self) {
        self.preempt_stalled = true;
    }

    /// Whether kernel `k` is quota-gated on this SM.
    pub fn is_gated(&self, k: KernelId) -> bool {
        self.gated[k.index()]
    }

    /// Warp instructions issued by this SM since construction.
    pub fn issued_total(&self) -> u64 {
        self.issued_total
    }

    /// TBs resident on this SM (all kernels, including transitioning ones).
    pub fn resident_tbs(&self) -> u32 {
        (self.max_tbs as usize - self.free_tbs.len()) as u32
    }

    /// Census of resident warps by stall state at cycle `now`.
    pub fn warp_stall_counts(&self, now: Cycle) -> WarpStallCounts {
        let mut counts = WarpStallCounts::default();
        for w in self.warps.iter().flatten() {
            if w.done {
                counts.done += 1;
            } else if w.at_barrier {
                counts.at_barrier += 1;
            } else if w.ready_at > now {
                counts.waiting += 1;
            } else {
                counts.ready += 1;
            }
        }
        counts
    }

    /// Re-derives this SM's bookkeeping from its resident TBs and checks it
    /// against the incrementally maintained state. Returns the first
    /// violated invariant. Called at epoch boundaries in audit mode.
    pub fn audit_invariants(&self) -> Result<(), (AuditKind, String)> {
        let mut threads = 0u32;
        let mut regs = 0u64;
        let mut smem = 0u64;
        let mut hosted = [0u16; MAX_KERNELS];
        let mut live_tbs = 0usize;
        for (slot, tb) in self.tbs.iter().enumerate() {
            let Some(tb) = tb.as_ref() else { continue };
            let k = tb.kernel.index();
            let Some(desc) = self.descs[k].as_ref() else {
                return Err((
                    AuditKind::SlotAccounting,
                    format!("TB slot {slot} hosts unregistered kernel {k}"),
                ));
            };
            threads += desc.threads_per_tb();
            regs += desc.regfile_bytes_per_tb();
            smem += desc.smem_per_tb();
            hosted[k] += 1;
            live_tbs += 1;
            for &ws in &tb.warp_slots {
                let ok = self.warps[ws as usize]
                    .as_ref()
                    .is_some_and(|w| w.kernel == tb.kernel && w.tb_slot == slot as u16);
                if !ok {
                    return Err((
                        AuditKind::SlotAccounting,
                        format!("TB slot {slot} claims warp slot {ws} it does not own"),
                    ));
                }
            }
        }
        if threads > self.max_threads || regs > self.regfile_bytes || smem > self.smem_bytes {
            return Err((
                AuditKind::Occupancy,
                format!(
                    "resident TBs need {threads} threads / {regs} reg bytes / {smem} smem \
                     bytes, limits are {} / {} / {}",
                    self.max_threads, self.regfile_bytes, self.smem_bytes
                ),
            ));
        }
        if threads != self.used_threads || regs != self.used_regs || smem != self.used_smem {
            return Err((
                AuditKind::Occupancy,
                format!(
                    "tracked occupancy {}t/{}r/{}s != recomputed {threads}t/{regs}r/{smem}s",
                    self.used_threads, self.used_regs, self.used_smem
                ),
            ));
        }
        for (k, &count) in hosted.iter().enumerate() {
            if count != self.hosted[k] {
                return Err((
                    AuditKind::SlotAccounting,
                    format!("kernel {k}: hosted counter {} != {count} resident TBs", self.hosted[k]),
                ));
            }
        }
        if self.free_tbs.len() + live_tbs != self.max_tbs as usize {
            return Err((
                AuditKind::SlotAccounting,
                format!(
                    "{} free + {live_tbs} live TB slots != {} total",
                    self.free_tbs.len(),
                    self.max_tbs
                ),
            ));
        }
        let live_warps = self.warps.iter().filter(|w| w.is_some()).count();
        if self.free_warps.len() + live_warps != self.max_warps as usize {
            return Err((
                AuditKind::SlotAccounting,
                format!(
                    "{} free + {live_warps} live warp slots != {} total",
                    self.free_warps.len(),
                    self.max_warps
                ),
            ));
        }
        for k in 0..MAX_KERNELS {
            let expected = self.quota_credit[k] - self.quota_debit[k];
            if self.quota[k] != expected {
                return Err((
                    AuditKind::QuotaLedger,
                    format!(
                        "kernel {k}: quota {} != credits {} - debits {}",
                        self.quota[k], self.quota_credit[k], self.quota_debit[k]
                    ),
                ));
            }
        }
        Ok(())
    }

    /// Test-only backdoor: mutates the quota counter *without* going
    /// through a ledger channel, to prove the audit catches stray writes.
    #[cfg(test)]
    pub(crate) fn corrupt_quota_for_test(&mut self, k: KernelId, delta: i64) {
        self.quota[k.index()] += delta;
    }

    // ------------------------------------------------------------------
    // Sampling and statistics
    // ------------------------------------------------------------------

    /// Records one idle-warp sample (call right after [`Sm::tick`]).
    ///
    /// A warp is *idle* if it could issue (ready operands, active TB) but was
    /// not selected this cycle — including warps throttled by quota, which
    /// occupy static resources without contributing progress (§3.6).
    pub(crate) fn sample_idle_warps(&mut self, now: Cycle) {
        self.idle_samples += 1;
        for slot in 0..self.max_warps {
            if self.warp_issuable(slot, now) {
                let k = self.warps[slot as usize].as_ref().expect("warp").kernel;
                self.idle_warp_acc[k.index()] += 1;
            }
        }
        // Scoreboard census rides on the same sampling cadence: warps that
        // are live but waiting on operand latencies (not done, not parked at
        // a barrier) accumulate into the per-kernel scoreboard-wait counter.
        let mut waits: PerKernel<u64> = per_kernel(|_| 0);
        for w in self.warps.iter().flatten() {
            if !w.done && !w.at_barrier && w.ready_at > now {
                waits[w.kernel.index()] += 1;
            }
        }
        for (k, w) in waits.iter().enumerate() {
            self.scoreboard_waits[k] += w;
        }
    }

    /// Mean idle warps of kernel `k` since the last
    /// [`Sm::reset_idle_sampling`] call.
    pub fn idle_warp_avg(&self, k: KernelId) -> f64 {
        if self.idle_samples == 0 {
            0.0
        } else {
            self.idle_warp_acc[k.index()] as f64 / self.idle_samples as f64
        }
    }

    /// Clears idle-warp sampling accumulators (call at epoch boundaries).
    pub fn reset_idle_sampling(&mut self) {
        self.idle_warp_acc = per_kernel(|_| 0);
        self.idle_samples = 0;
    }

    /// Cumulative issue counters for kernel `k`.
    pub fn counters(&self, k: KernelId) -> SmKernelCounters {
        self.counters[k.index()]
    }

    /// Cycles in which the SM hosted at least one thread.
    pub fn busy_cycles(&self) -> u64 {
        self.busy_cycles
    }

    /// Issue slots offered while busy (busy cycles × schedulers).
    pub fn issue_slots(&self) -> u64 {
        self.issue_slots
    }

    /// Cycle-slots in which an otherwise-issuable warp of `k` was denied by
    /// quota admission (issue/stall telemetry for the counter registry).
    pub fn quota_blocked_cycles(&self, k: KernelId) -> u64 {
        self.quota_blocked[k.index()]
    }

    /// Times kernel `k`'s quota counter crossed from positive into
    /// exhaustion on this SM.
    pub fn quota_exhaustions(&self, k: KernelId) -> u64 {
        self.quota_exhaustions[k.index()]
    }

    /// Sampled count of kernel `k` warps waiting on operand scoreboards
    /// (same cadence as idle-warp sampling).
    pub fn scoreboard_wait_samples(&self, k: KernelId) -> u64 {
        self.scoreboard_waits[k.index()]
    }

    /// This SM's flight-recorder ring.
    pub fn events(&self) -> &EventRing {
        &self.events
    }

    /// Fraction of issue slots used while busy.
    pub fn issue_utilization(&self) -> f64 {
        if self.issue_slots == 0 {
            0.0
        } else {
            self.issued_total as f64 / self.issue_slots as f64
        }
    }

    /// Per-kernel ALU thread instructions (power model input).
    pub fn alu_thread_insts(&self, k: KernelId) -> u64 {
        self.alu_thread_insts[k.index()]
    }

    /// Per-kernel SFU thread instructions (power model input).
    pub fn sfu_thread_insts(&self, k: KernelId) -> u64 {
        self.sfu_thread_insts[k.index()]
    }

    /// Per-kernel shared-memory thread accesses (power model input).
    pub fn smem_accesses(&self, k: KernelId) -> u64 {
        self.smem_accesses[k.index()]
    }

    /// L1 hit/miss statistics.
    pub fn l1_stats(&self) -> crate::cache::CacheStats {
        self.l1.stats()
    }

    /// Preemption statistics.
    pub fn preempt_stats(&self) -> PreemptStats {
        self.preempt_stats
    }

    /// Number of resident threads.
    pub fn used_threads(&self) -> u32 {
        self.used_threads
    }

    /// Free thread capacity.
    pub fn free_threads(&self) -> u32 {
        self.max_threads - self.used_threads
    }

    /// Free register-file bytes.
    pub fn free_regs(&self) -> u64 {
        self.regfile_bytes - self.used_regs
    }

    /// Free shared-memory bytes.
    pub fn free_smem(&self) -> u64 {
        self.smem_bytes - self.used_smem
    }

    /// Free warp slots.
    pub fn free_warp_slots(&self) -> u32 {
        self.free_warps.len() as u32
    }

    /// Free TB slots.
    pub fn free_tb_slots(&self) -> u32 {
        self.free_tbs.len() as u32
    }

    /// Whether TB completions or finished context saves are waiting for the
    /// TB scheduler's next service pass.
    pub(crate) fn has_pending_notifications(&self) -> bool {
        !self.completed.is_empty() || !self.saved.is_empty()
    }

    /// Drains TB-completion notifications for the TB scheduler.
    pub(crate) fn drain_completed(&mut self, out: &mut Vec<(KernelId, TbIndex)>) {
        out.append(&mut self.completed);
    }

    /// Drains saved-context notifications for the TB scheduler.
    pub(crate) fn drain_saved(&mut self, out: &mut Vec<(KernelId, SavedTb)>) {
        out.append(&mut self.saved);
    }
}

crate::impl_snap_struct!(SmKernelCounters { thread_insts, warp_insts });

// `ready_buf` is per-tick scratch, always drained before `tick` returns, so a
// restored SM starts with an empty (re-growable) buffer.
crate::impl_snap_struct!(Sm {
    id,
    policy,
    num_scheds,
    max_warps,
    max_tbs,
    max_threads,
    regfile_bytes,
    smem_bytes,
    l1,
    descs,
    used_threads,
    used_regs,
    used_smem,
    warps,
    tbs,
    free_warps,
    free_tbs,
    scheds,
    next_age,
    transitioning,
    quota,
    gated,
    refill,
    is_qos,
    elastic,
    priority_block,
    quota_credit,
    quota_debit,
    quota_frozen,
    sched_frozen,
    preempt_stalled,
    hosted,
    counters,
    alu_thread_insts,
    sfu_thread_insts,
    smem_accesses,
    busy_cycles,
    issue_slots,
    issued_total,
    idle_warp_acc,
    idle_samples,
    preempt_stats,
    trace_on,
    events,
    quota_blocked,
    quota_exhaustions,
    scoreboard_waits,
    completed,
    saved,
} skip { ready_buf });

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GpuConfig;
    use crate::kernel::{AccessPattern, Op};
    use crate::memsys::MemSystem;

    fn setup(body: Vec<Op>, iters: u32) -> (Sm, MemSystem, Arc<KernelDesc>) {
        let cfg = GpuConfig::tiny();
        let sm = Sm::new(SmId::new(0), &cfg);
        let mem = MemSystem::new(cfg.mem.clone());
        let desc = Arc::new(
            KernelDesc::builder("t")
                .threads_per_tb(64)
                .regs_per_thread(16)
                .iterations(iters)
                .grid_tbs(8)
                .body(body)
                .build(),
        );
        (sm, mem, desc)
    }

    fn run(sm: &mut Sm, mem: &mut MemSystem, cycles: u64) {
        for now in 0..cycles {
            sm.tick(now, mem);
        }
    }

    #[test]
    fn dispatch_occupies_and_completion_frees() {
        let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 4)], 2);
        let k = KernelId::new(0);
        sm.set_kernel_desc(k, desc.clone());
        sm.dispatch(k, TbIndex(0), None, 0, 0);
        assert_eq!(sm.hosted_tbs(k), 1);
        assert_eq!(sm.used_threads(), 64);
        run(&mut sm, &mut mem, 200);
        assert_eq!(sm.hosted_tbs(k), 0, "TB should complete and free");
        assert_eq!(sm.used_threads(), 0);
        let mut done = Vec::new();
        sm.drain_completed(&mut done);
        assert_eq!(done, vec![(k, TbIndex(0))]);
        // 2 warps * 2 iters * 4 insts * 32 lanes
        assert_eq!(sm.counters(k).thread_insts, 2 * 2 * 4 * 32);
    }

    #[test]
    fn quota_gating_throttles_kernel() {
        let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 100)], 100);
        let k = KernelId::new(0);
        sm.set_kernel_desc(k, desc);
        sm.dispatch(k, TbIndex(0), None, 0, 0);
        sm.set_gated(k, true);
        sm.set_qos_kernel(k, true);
        sm.set_epoch_quota(k, 320, QuotaCarry::DiscardSurplus, 0);
        run(&mut sm, &mut mem, 1_000);
        // 320 thread-insts = 10 warp instructions; slight overshoot of one
        // warp instruction per scheduler is possible at the boundary.
        let issued = sm.counters(k).thread_insts;
        assert!(issued >= 320, "must consume its quota, got {issued}");
        assert!(issued <= 320 + 32 * 2, "throttled soon after exhaustion, got {issued}");
        assert!(sm.quota(k) <= 0);
    }

    #[test]
    fn nonqos_refill_after_qos_exhausted() {
        let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 100)], 100);
        let q = KernelId::new(0);
        let n = KernelId::new(1);
        sm.set_kernel_desc(q, desc.clone());
        sm.set_kernel_desc(n, desc);
        sm.dispatch(q, TbIndex(0), None, 0, 0);
        sm.dispatch(n, TbIndex(0), None, 0, 0);
        for (k, qos) in [(q, true), (n, false)] {
            sm.set_gated(k, true);
            sm.set_qos_kernel(k, qos);
        }
        sm.set_epoch_quota(q, 320, QuotaCarry::DiscardSurplus, 0);
        sm.set_epoch_quota(n, 320, QuotaCarry::DiscardSurplus, 320);
        run(&mut sm, &mut mem, 2_000);
        let qi = sm.counters(q).thread_insts;
        let ni = sm.counters(n).thread_insts;
        assert!(qi <= 320 + 64, "QoS kernel stays near quota, got {qi}");
        assert!(ni > 10 * 320, "non-QoS kernel keeps refilling, got {ni}");
    }

    #[test]
    fn elastic_refills_all_when_everyone_exhausted() {
        let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 100)], 100);
        let k = KernelId::new(0);
        sm.set_kernel_desc(k, desc);
        sm.dispatch(k, TbIndex(0), None, 0, 0);
        sm.set_gated(k, true);
        sm.set_qos_kernel(k, true);
        sm.set_elastic(true);
        sm.set_epoch_quota(k, 320, QuotaCarry::DiscardSurplus, 320);
        run(&mut sm, &mut mem, 2_000);
        assert!(
            sm.counters(k).thread_insts > 10 * 320,
            "elastic epochs keep replenishing, got {}",
            sm.counters(k).thread_insts
        );
    }

    #[test]
    fn priority_block_serializes_kernels() {
        let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 100)], 100);
        let q = KernelId::new(0);
        let n = KernelId::new(1);
        sm.set_kernel_desc(q, desc.clone());
        sm.set_kernel_desc(n, desc);
        sm.dispatch(q, TbIndex(0), None, 0, 0);
        sm.dispatch(n, TbIndex(0), None, 0, 0);
        sm.set_gated(q, true);
        sm.set_qos_kernel(q, true);
        sm.set_priority_block(true);
        sm.set_epoch_quota(q, 3_200, QuotaCarry::DiscardSurplus, 0);
        // While the QoS kernel has quota, the non-QoS kernel must not issue.
        for now in 0..20 {
            sm.tick(now, &mut mem);
        }
        assert!(sm.counters(q).thread_insts > 0);
        assert_eq!(sm.counters(n).thread_insts, 0, "non-QoS blocked by priority gate");
        run(&mut sm, &mut mem, 3_000);
        assert!(sm.counters(n).thread_insts > 0, "non-QoS runs after quota exhausted");
    }

    #[test]
    fn barrier_synchronizes_warps() {
        // Warp 0 of the TB has no extra work; all warps must still wait at
        // the barrier for the slowest one.
        let (mut sm, mut mem, desc) =
            setup(vec![Op::alu(8, 4), Op::Bar, Op::alu(1, 1)], 1);
        let k = KernelId::new(0);
        sm.set_kernel_desc(k, desc);
        sm.dispatch(k, TbIndex(0), None, 0, 0);
        run(&mut sm, &mut mem, 500);
        assert_eq!(sm.hosted_tbs(k), 0, "TB with barrier completes");
    }

    #[test]
    fn preempt_and_resume_preserves_progress() {
        let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 10)], 50);
        let k = KernelId::new(0);
        sm.set_kernel_desc(k, desc.clone());
        sm.dispatch(k, TbIndex(3), None, 0, 0);
        run(&mut sm, &mut mem, 100);
        let before = sm.counters(k).thread_insts;
        assert!(before > 0);
        assert!(sm.start_preempt(k, 100, 50));
        for now in 100..200 {
            sm.tick(now, &mut mem);
        }
        let mut saved = Vec::new();
        sm.drain_saved(&mut saved);
        assert_eq!(saved.len(), 1);
        assert_eq!(sm.hosted_tbs(k), 0);
        let (_, tb) = saved.pop().expect("one saved TB");
        assert_eq!(tb.tb_index, TbIndex(3));
        // Resume and run to completion.
        sm.dispatch(k, TbIndex(3), Some(tb), 200, 10);
        for now in 200..4_000 {
            sm.tick(now, &mut mem);
        }
        let mut done = Vec::new();
        sm.drain_completed(&mut done);
        assert_eq!(done, vec![(k, TbIndex(3))]);
        // Total work equals a full TB execution: 2 warps * 50 iters * 10 * 32.
        assert_eq!(sm.counters(k).thread_insts, 2 * 50 * 10 * 32);
    }

    #[test]
    fn idle_warp_sampling_counts_unissued_ready_warps() {
        let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 100)], 100);
        let k = KernelId::new(0);
        sm.set_kernel_desc(k, desc.clone());
        // Several TBs worth of warps, only `warp_schedulers` can issue per cycle.
        for i in 0..4 {
            sm.dispatch(k, TbIndex(i), None, 0, 0);
        }
        for now in 0..50 {
            sm.tick(now, &mut mem);
            sm.sample_idle_warps(now);
        }
        assert!(sm.idle_warp_avg(k) > 0.0, "with 8 ready warps and 4 issue slots some idle");
        sm.reset_idle_sampling();
        assert_eq!(sm.idle_warp_avg(k), 0.0);
    }

    #[test]
    fn max_resident_tbs_respects_limits() {
        let cfg = GpuConfig::paper_table1();
        let sm = Sm::new(SmId::new(0), &cfg);
        let fat = KernelDesc::builder("fat")
            .threads_per_tb(256)
            .regs_per_thread(64) // 64 KiB regs per TB -> 4 TBs by regfile
            .body(vec![Op::alu(1, 1)])
            .build();
        assert_eq!(sm.max_resident_tbs(&fat), 4);
        let slim = KernelDesc::builder("slim")
            .threads_per_tb(64)
            .regs_per_thread(16)
            .body(vec![Op::alu(1, 1)])
            .build();
        assert_eq!(sm.max_resident_tbs(&slim), 32, "TB-slot limited");
    }

    #[test]
    fn memory_op_goes_through_memsys() {
        let (mut sm, mut mem, desc) = setup(
            vec![Op::mem_load(AccessPattern::stream()), Op::alu(1, 1)],
            4,
        );
        let k = KernelId::new(0);
        sm.set_kernel_desc(k, desc);
        sm.dispatch(k, TbIndex(0), None, 0, 0);
        run(&mut sm, &mut mem, 5_000);
        assert!(mem.traffic().l1_accesses[0] > 0);
        assert!(sm.l1_stats().accesses() > 0);
    }

    #[test]
    fn scavenging_lets_exhausted_nonqos_use_idle_slots() {
        // A lone non-QoS kernel with zero quota: no QoS kernel competes for
        // the slots, so scavenging must keep it running.
        let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 100)], 100);
        let n = KernelId::new(0);
        sm.set_kernel_desc(n, desc);
        sm.dispatch(n, TbIndex(0), None, 0, 0);
        sm.set_gated(n, true);
        sm.set_qos_kernel(n, false);
        sm.set_epoch_quota(n, 0, QuotaCarry::Reset, 0);
        run(&mut sm, &mut mem, 500);
        assert!(
            sm.counters(n).thread_insts > 10_000,
            "scavenging must keep the machine busy, got {}",
            sm.counters(n).thread_insts
        );
    }

    #[test]
    fn scavenging_never_feeds_exhausted_qos_kernels() {
        let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 100)], 100);
        let q = KernelId::new(0);
        sm.set_kernel_desc(q, desc);
        sm.dispatch(q, TbIndex(0), None, 0, 0);
        sm.set_gated(q, true);
        sm.set_qos_kernel(q, true);
        sm.set_epoch_quota(q, 320, QuotaCarry::DiscardSurplus, 0);
        run(&mut sm, &mut mem, 2_000);
        assert!(
            sm.counters(q).thread_insts <= 320 + 64,
            "QoS kernels stay throttled at their quota, got {}",
            sm.counters(q).thread_insts
        );
    }

    #[test]
    fn reset_carry_drops_debt() {
        let cfg = GpuConfig::tiny();
        let mut sm = Sm::new(SmId::new(0), &cfg);
        let k = KernelId::new(0);
        sm.set_gated(k, true);
        sm.set_epoch_quota(k, 100, QuotaCarry::DiscardSurplus, 0);
        // Simulate deep debt, then a Reset assignment.
        sm.set_epoch_quota(k, -5_000, QuotaCarry::DiscardSurplus, 0);
        assert!(sm.quota(k) < 0);
        sm.set_epoch_quota(k, 100, QuotaCarry::Reset, 0);
        assert_eq!(sm.quota(k), 100, "reset ignores prior debt");
    }

    mod preemption_properties {
        use super::*;
        use proptest::prelude::*;

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(32))]

            /// Preempting and resuming a TB at an arbitrary point never
            /// loses or duplicates work: total retired thread-instructions
            /// equal one uninterrupted TB execution.
            #[test]
            fn preempt_resume_conserves_work(
                preempt_at in 1u64..2_000,
                save_cost in 1u64..500,
                load_cost in 0u64..500,
                iters in 1u32..20,
            ) {
                let (mut sm, mut mem, desc) = setup(vec![Op::alu(1, 10)], iters);
                let k = KernelId::new(0);
                sm.set_kernel_desc(k, desc.clone());
                sm.dispatch(k, TbIndex(0), None, 0, 0);
                for now in 0..preempt_at {
                    sm.tick(now, &mut mem);
                }
                let expected = desc.thread_insts_per_tb();
                if sm.hosted_tbs(k) == 0 {
                    // The TB already finished before the preemption point.
                    prop_assert_eq!(sm.counters(k).thread_insts, expected);
                    return Ok(());
                }
                prop_assert!(sm.start_preempt(k, preempt_at, save_cost));
                let resume_at = preempt_at + save_cost + 1;
                for now in preempt_at..resume_at {
                    sm.tick(now, &mut mem);
                }
                let mut saved = Vec::new();
                sm.drain_saved(&mut saved);
                prop_assert_eq!(saved.len(), 1);
                let (_, tb) = saved.pop().expect("one saved TB");
                sm.dispatch(k, TbIndex(0), Some(tb), resume_at, load_cost);
                for now in resume_at..resume_at + 60_000 {
                    sm.tick(now, &mut mem);
                    if sm.hosted_tbs(k) == 0 {
                        break;
                    }
                }
                prop_assert_eq!(sm.hosted_tbs(k), 0, "resumed TB must finish");
                prop_assert_eq!(sm.counters(k).thread_insts, expected);
            }
        }
    }

    #[test]
    fn rollover_carry_keeps_surplus_discard_drops_it() {
        let cfg = GpuConfig::tiny();
        let mut sm = Sm::new(SmId::new(0), &cfg);
        let k = KernelId::new(0);
        sm.set_gated(k, true);
        sm.set_epoch_quota(k, 100, QuotaCarry::DiscardSurplus, 0);
        assert_eq!(sm.quota(k), 100);
        sm.set_epoch_quota(k, 100, QuotaCarry::Full, 0);
        assert_eq!(sm.quota(k), 200, "rollover keeps the surplus");
        sm.set_epoch_quota(k, 50, QuotaCarry::Full, 0);
        assert_eq!(sm.quota(k), 100, "carried surplus is capped at one allocation");
        sm.set_epoch_quota(k, 100, QuotaCarry::DiscardSurplus, 0);
        assert_eq!(sm.quota(k), 100, "discard drops the surplus");
    }
}
