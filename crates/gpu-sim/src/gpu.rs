//! The top-level GPU: owns SMs, memory system, TB scheduler, and the
//! epoch-driven controller hook.

use std::sync::Arc;

use crate::config::GpuConfig;
use crate::kernel::KernelDesc;
use crate::memsys::MemSystem;
use crate::preempt::PreemptStats;
use crate::sm::Sm;
use crate::stats::{EpochSnapshot, GpuStats, KernelStats};
use crate::tb_sched::{KernelRuntime, SharingMode, TbScheduler};
use crate::types::{per_kernel, Cycle, KernelId, PerKernel, SmId};

/// Cycles between TB-scheduler service passes (dispatch / preemption checks).
const DISPATCH_INTERVAL: Cycle = 8;

/// Epoch-driven policy hook.
///
/// Implementations are the QoS managers of the `qos-core` crate; the
/// simulator calls [`Controller::on_epoch`] every `epoch_cycles` (first at
/// cycle 0, before any instruction issues) with full mutable access to the
/// GPU's control plane: quota counters, TB targets, SM ownership.
pub trait Controller {
    /// Called at every epoch boundary. `epoch` counts from 0.
    fn on_epoch(&mut self, gpu: &mut Gpu, epoch: u64);
}

/// A controller that never intervenes (plain unmanaged sharing).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullController;

impl Controller for NullController {
    fn on_epoch(&mut self, _gpu: &mut Gpu, _epoch: u64) {}
}

/// The simulated GPU.
#[derive(Debug)]
pub struct Gpu {
    cfg: GpuConfig,
    cycle: Cycle,
    sms: Vec<Sm>,
    mem: MemSystem,
    kernels: Vec<KernelRuntime>,
    tb_sched: TbScheduler,
    epoch_snapshot: EpochSnapshot,
    last_totals: PerKernel<u64>,
    last_epoch_cycle: Cycle,
    epoch_index: u64,
    sample_interval: Cycle,
}

impl Gpu {
    /// Builds a GPU from its configuration.
    ///
    /// # Panics
    ///
    /// Panics if the configuration fails [`GpuConfig::validate`].
    pub fn new(cfg: GpuConfig) -> Self {
        cfg.validate().expect("invalid GPU configuration");
        let sms = (0..cfg.num_sms as usize)
            .map(|i| Sm::new(SmId::new(i), &cfg))
            .collect();
        let sample_interval =
            (cfg.epoch_cycles / Cycle::from(cfg.samples_per_epoch)).max(1);
        Gpu {
            sms,
            mem: MemSystem::new(cfg.mem.clone()),
            kernels: Vec::new(),
            tb_sched: TbScheduler::new(cfg.num_sms as usize),
            epoch_snapshot: EpochSnapshot::empty(),
            last_totals: per_kernel(|_| 0),
            last_epoch_cycle: 0,
            epoch_index: 0,
            sample_interval,
            cycle: 0,
            cfg,
        }
    }

    /// Launches a kernel; it becomes resident according to the sharing mode
    /// at the next TB-scheduler service pass.
    ///
    /// # Panics
    ///
    /// Panics if [`crate::MAX_KERNELS`] kernels are already launched.
    pub fn launch(&mut self, desc: KernelDesc) -> KernelId {
        assert!(
            self.kernels.len() < crate::MAX_KERNELS,
            "at most {} resident kernels",
            crate::MAX_KERNELS
        );
        let kid = KernelId::new(self.kernels.len());
        let desc = Arc::new(desc);
        for sm in &mut self.sms {
            sm.set_kernel_desc(kid, desc.clone());
        }
        self.kernels.push(KernelRuntime::new(desc));
        kid
    }

    /// Runs the simulation for `cycles` cycles under `ctrl`.
    pub fn run(&mut self, cycles: Cycle, ctrl: &mut dyn Controller) {
        let end = self.cycle + cycles;
        while self.cycle < end {
            let now = self.cycle;
            if now % self.cfg.epoch_cycles == 0 {
                self.finish_epoch(now);
                ctrl.on_epoch(self, self.epoch_index);
                self.epoch_index += 1;
                for sm in &mut self.sms {
                    sm.reset_idle_sampling();
                }
                self.service(now);
            } else if now % DISPATCH_INTERVAL == 0 {
                self.service(now);
            }
            for sm in &mut self.sms {
                sm.tick(now, &mut self.mem);
            }
            if now % self.sample_interval == 0 {
                for sm in &mut self.sms {
                    sm.sample_idle_warps(now);
                }
            }
            self.cycle += 1;
        }
    }

    fn service(&mut self, now: Cycle) {
        self.tb_sched.service(
            now,
            &mut self.sms,
            &mut self.kernels,
            &mut self.mem,
            &self.cfg.preempt,
        );
    }

    fn finish_epoch(&mut self, now: Cycle) {
        let totals = self.kernel_totals();
        let mut snap = EpochSnapshot::empty();
        snap.epoch = self.epoch_index;
        snap.cycles = now - self.last_epoch_cycle;
        for k in 0..crate::MAX_KERNELS {
            snap.thread_insts[k] = totals[k] - self.last_totals[k];
        }
        self.last_totals = totals;
        self.last_epoch_cycle = now;
        self.epoch_snapshot = snap;
    }

    fn kernel_totals(&self) -> PerKernel<u64> {
        let mut totals = per_kernel(|_| 0u64);
        for sm in &self.sms {
            for (k, total) in totals.iter_mut().enumerate() {
                *total += sm.counters(KernelId::new(k)).thread_insts;
            }
        }
        totals
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The configuration in use.
    pub fn config(&self) -> &GpuConfig {
        &self.cfg
    }

    /// Current simulation cycle.
    pub fn cycle(&self) -> Cycle {
        self.cycle
    }

    /// Number of launched kernels.
    pub fn num_kernels(&self) -> usize {
        self.kernels.len()
    }

    /// Launched kernel ids.
    pub fn kernel_ids(&self) -> impl Iterator<Item = KernelId> + '_ {
        (0..self.kernels.len()).map(KernelId::new)
    }

    /// Description of kernel `k`.
    pub fn kernel_desc(&self, k: KernelId) -> &Arc<KernelDesc> {
        &self.kernels[k.index()].desc
    }

    /// Number of preempted TBs of kernel `k` awaiting resumption.
    pub fn preempted_len(&self, k: KernelId) -> usize {
        self.kernels[k.index()].preempted_len()
    }

    /// The SMs (read-only).
    pub fn sms(&self) -> &[Sm] {
        &self.sms
    }

    /// Mutable access to one SM's control plane (quota counters, gating).
    pub fn sm_mut(&mut self, id: SmId) -> &mut Sm {
        &mut self.sms[id.index()]
    }

    /// The shared memory system.
    pub fn mem(&self) -> &MemSystem {
        &self.mem
    }

    /// Latest epoch snapshot (per-kernel instructions in the last epoch).
    pub fn epoch_snapshot(&self) -> &EpochSnapshot {
        &self.epoch_snapshot
    }

    /// Whether any SM has a context switch in flight.
    pub fn context_switch_in_flight(&self) -> bool {
        self.sms.iter().any(Sm::context_switch_in_flight)
    }

    /// Aggregated preemption statistics.
    pub fn preempt_stats(&self) -> PreemptStats {
        let mut agg = PreemptStats::default();
        for sm in &self.sms {
            let s = sm.preempt_stats();
            agg.saves += s.saves;
            agg.resumes += s.resumes;
            agg.transfer_cycles += s.transfer_cycles;
        }
        agg
    }

    /// Aggregated statistics snapshot.
    pub fn stats(&self) -> GpuStats {
        let mut kernels: PerKernel<KernelStats> = per_kernel(|_| KernelStats::default());
        for sm in &self.sms {
            for (k, ks) in kernels.iter_mut().enumerate() {
                let c = sm.counters(KernelId::new(k));
                ks.thread_insts += c.thread_insts;
                ks.warp_insts += c.warp_insts;
            }
        }
        for (k, kr) in self.kernels.iter().enumerate() {
            kernels[k].tbs_completed = kr.tbs_completed();
            kernels[k].launches_completed = kr.launches_completed();
        }
        GpuStats::new(self.cycle, self.kernels.len(), kernels)
    }

    // ------------------------------------------------------------------
    // Control plane (used by QoS managers)
    // ------------------------------------------------------------------

    /// Current sharing mode.
    pub fn sharing_mode(&self) -> SharingMode {
        self.tb_sched.mode()
    }

    /// Switches the sharing mode. Residency converges at subsequent service
    /// passes (over-subscribed TBs are preempted, free capacity refilled).
    pub fn set_sharing_mode(&mut self, mode: SharingMode) {
        self.tb_sched.set_mode(mode);
    }

    /// Sets the SMK TB target of kernel `k` on SM `sm`.
    pub fn set_tb_target(&mut self, sm: SmId, k: KernelId, tbs: u16) {
        self.tb_sched.set_target(sm.index(), k, tbs);
    }

    /// SMK TB target of kernel `k` on SM `sm`.
    pub fn tb_target(&self, sm: SmId, k: KernelId) -> u16 {
        self.tb_sched.target(sm.index(), k)
    }

    /// Assigns SM `sm` to `owner` (spatial mode).
    pub fn set_sm_owner(&mut self, sm: SmId, owner: Option<KernelId>) {
        self.tb_sched.set_owner(sm.index(), owner);
    }

    /// Owner of SM `sm` (spatial mode).
    pub fn sm_owner(&self, sm: SmId) -> Option<KernelId> {
        self.tb_sched.owner(sm.index())
    }

    /// The kernel currently owning the GPU under
    /// [`SharingMode::TimeMux`].
    pub fn time_mux_active(&self) -> KernelId {
        self.tb_sched.active_kernel()
    }

    /// Maximum TBs of kernel `k` one SM can host (occupancy bound).
    pub fn max_resident_tbs(&self, k: KernelId) -> u32 {
        self.sms[0].max_resident_tbs(self.kernel_desc(k))
    }

    /// All SM ids.
    pub fn sm_ids(&self) -> impl Iterator<Item = SmId> + '_ {
        (0..self.sms.len()).map(SmId::new)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::kernel::{AccessPattern, Op};

    fn compute_kernel(name: &str) -> KernelDesc {
        KernelDesc::builder(name)
            .threads_per_tb(256)
            .regs_per_thread(32)
            .grid_tbs(256)
            .iterations(8)
            .body(vec![Op::alu(2, 12), Op::mem_load(AccessPattern::tile(8 * 1024))])
            .build()
    }

    fn memory_kernel(name: &str) -> KernelDesc {
        KernelDesc::builder(name)
            .threads_per_tb(256)
            .regs_per_thread(24)
            .grid_tbs(256)
            .iterations(64)
            .memory_intensive(true)
            .body(vec![Op::mem_load(AccessPattern::stream()), Op::alu(2, 2)])
            .build()
    }

    #[test]
    fn isolated_run_makes_progress() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        let k = gpu.launch(compute_kernel("c"));
        gpu.run(20_000, &mut NullController);
        let stats = gpu.stats();
        assert!(stats.kernel(k).thread_insts > 100_000);
        assert!(stats.kernel(k).tbs_completed > 0);
        assert!(stats.ipc(k) > 1.0, "IPC {}", stats.ipc(k));
    }

    #[test]
    fn compute_kernel_outruns_memory_kernel_in_isolation() {
        let mut c = Gpu::new(GpuConfig::tiny());
        let kc = c.launch(compute_kernel("c"));
        c.run(20_000, &mut NullController);
        let mut m = Gpu::new(GpuConfig::tiny());
        let km = m.launch(memory_kernel("m"));
        m.run(20_000, &mut NullController);
        assert!(
            c.stats().ipc(kc) > m.stats().ipc(km),
            "compute IPC {} must exceed memory IPC {}",
            c.stats().ipc(kc),
            m.stats().ipc(km)
        );
    }

    #[test]
    fn corun_degrades_both_kernels() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        let a = gpu.launch(memory_kernel("a"));
        let b = gpu.launch(memory_kernel("b").with_seed(99));
        gpu.set_sharing_mode(SharingMode::Smk);
        // Force co-residency: half the TB slots each (unbounded targets would
        // let whichever kernel dispatches first monopolize the SMs — the very
        // problem the paper's static resource management addresses).
        for sm in gpu.sm_ids().collect::<Vec<_>>() {
            gpu.set_tb_target(sm, a, 4);
            gpu.set_tb_target(sm, b, 4);
        }
        gpu.run(20_000, &mut NullController);
        let shared = gpu.stats();

        let mut iso = Gpu::new(GpuConfig::tiny());
        let ki = iso.launch(memory_kernel("a"));
        iso.run(20_000, &mut NullController);
        let isolated = iso.stats();

        assert!(shared.ipc(a) > 0.0 && shared.ipc(b) > 0.0);
        assert!(
            shared.ipc(a) < isolated.ipc(ki),
            "sharing must cost bandwidth-bound kernels: {} vs isolated {}",
            shared.ipc(a),
            isolated.ipc(ki)
        );
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut gpu = Gpu::new(GpuConfig::tiny());
            let a = gpu.launch(compute_kernel("a"));
            let b = gpu.launch(memory_kernel("b"));
            gpu.set_sharing_mode(SharingMode::Smk);
            gpu.run(15_000, &mut NullController);
            (gpu.stats().kernel(a).thread_insts, gpu.stats().kernel(b).thread_insts)
        };
        assert_eq!(run(), run(), "same seeds must replay identically");
    }

    #[test]
    fn epoch_snapshot_reports_progress() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        gpu.launch(compute_kernel("c"));

        struct Check {
            saw_progress: bool,
        }
        impl Controller for Check {
            fn on_epoch(&mut self, gpu: &mut Gpu, epoch: u64) {
                if epoch > 0 {
                    let snap = gpu.epoch_snapshot();
                    assert_eq!(snap.cycles, gpu.config().epoch_cycles);
                    if snap.thread_insts[0] > 0 {
                        self.saw_progress = true;
                    }
                }
            }
        }
        let mut ctrl = Check { saw_progress: false };
        gpu.run(5_000, &mut ctrl);
        assert!(ctrl.saw_progress);
    }

    #[test]
    fn spatial_mode_partitions_sms() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        let a = gpu.launch(compute_kernel("a"));
        let b = gpu.launch(compute_kernel("b").with_seed(7));
        gpu.set_sharing_mode(SharingMode::Spatial);
        gpu.set_sm_owner(SmId::new(0), Some(a));
        gpu.set_sm_owner(SmId::new(1), Some(b));
        gpu.run(5_000, &mut NullController);
        assert_eq!(gpu.sms()[0].hosted_tbs(b), 0);
        assert_eq!(gpu.sms()[1].hosted_tbs(a), 0);
        assert!(gpu.stats().ipc(a) > 0.0);
        assert!(gpu.stats().ipc(b) > 0.0);
    }

    #[test]
    fn time_mux_serializes_kernels() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        let a = gpu.launch(compute_kernel("a"));
        let b = gpu.launch(compute_kernel("b").with_seed(5));
        gpu.set_sharing_mode(SharingMode::TimeMux);
        // While kernel a's first grid is incomplete, b must not be resident.
        gpu.run(2_000, &mut NullController);
        assert_eq!(gpu.time_mux_active(), a);
        assert!(gpu.stats().ipc(b) == 0.0, "kernel b must wait its turn");
        // Run long enough for a to finish a full grid and hand over.
        gpu.run(400_000, &mut NullController);
        assert!(
            gpu.stats().kernel(b).thread_insts > 0,
            "ownership must eventually rotate to kernel b"
        );
    }

    #[test]
    fn smk_outperforms_time_multiplexing_for_complementary_kernels() {
        // The paper's motivation (section 2.3): fine-grained sharing beats
        // kernel-granularity time multiplexing in total throughput because
        // compute- and memory-bound kernels overlap.
        let run = |mode: SharingMode| {
            let mut gpu = Gpu::new(GpuConfig::tiny());
            let a = gpu.launch(compute_kernel("c"));
            let b = gpu.launch(memory_kernel("m"));
            gpu.set_sharing_mode(mode);
            if mode == SharingMode::Smk {
                for sm in gpu.sm_ids().collect::<Vec<_>>() {
                    gpu.set_tb_target(sm, a, 4);
                    gpu.set_tb_target(sm, b, 4);
                }
            }
            gpu.run(100_000, &mut NullController);
            gpu.stats().total_thread_insts()
        };
        let smk = run(SharingMode::Smk);
        let timemux = run(SharingMode::TimeMux);
        assert!(
            smk > timemux,
            "SMK total throughput ({smk}) must beat time multiplexing ({timemux})"
        );
    }

    #[test]
    fn launch_limit_enforced() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        for i in 0..crate::MAX_KERNELS {
            gpu.launch(compute_kernel(&format!("k{i}")));
        }
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            gpu.launch(compute_kernel("overflow"));
        }));
        assert!(result.is_err());
    }

    #[test]
    fn run_is_resumable() {
        let mut gpu = Gpu::new(GpuConfig::tiny());
        let k = gpu.launch(compute_kernel("c"));
        gpu.run(5_000, &mut NullController);
        let mid = gpu.stats().kernel(k).thread_insts;
        gpu.run(5_000, &mut NullController);
        let end = gpu.stats().kernel(k).thread_insts;
        assert!(end > mid);
        assert_eq!(gpu.cycle(), 10_000);
    }
}
