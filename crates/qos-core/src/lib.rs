//! # qos-core — fine-grained QoS for multitasking GPUs
//!
//! The primary contribution of *"Quality of Service Support for Fine-Grained
//! Sharing on GPUs"* (ISCA 2017), implemented against the [`gpu_sim`]
//! simulator:
//!
//! * [`goals`] — translating application-level QoS goals (frame/data rates)
//!   into architectural IPC goals (§3.2),
//! * [`scheme`] — the four quota-allocation schemes: Naïve, History-adjusted,
//!   Elastic Epoch and Rollover (§3.4), plus the CPU-style Rollover-Time
//!   strawman (§4.5),
//! * [`nonqos`] — the artificial-performance-goal search that lets non-QoS
//!   kernels consume exactly the slack the QoS kernels leave (§3.5),
//! * [`static_alloc`] — symmetric initial thread-block allocation and
//!   run-time TB adjustment driven by idle-warp sampling (§3.6),
//! * [`manager`] — [`QosManager`], the epoch controller tying it together,
//! * [`spart`] — the coarse-grained baseline: spatial partitioning with
//!   hill climbing (Aguilera et al., the paper's `Spart`),
//! * [`fairness`] — the SMK-style fairness policy the paper's firmware can
//!   swap with QoS management (§3.3).
//!
//! # Example
//!
//! ```
//! use gpu_sim::{Gpu, GpuConfig};
//! use qos_core::{QosManager, QosSpec, QuotaScheme};
//!
//! let mut gpu = Gpu::new(GpuConfig::paper_table1());
//! let qos = gpu.launch(workloads::by_name("sgemm").unwrap());
//! let batch = gpu.launch(workloads::by_name("lbm").unwrap());
//!
//! // The sgemm instance must retain 70% of its isolated IPC (say 1080.0);
//! // lbm is best-effort.
//! let mut mgr = QosManager::new(QuotaScheme::Rollover)
//!     .with_kernel(qos, QosSpec::qos(1080.0))
//!     .with_kernel(batch, QosSpec::best_effort());
//! gpu.run(50_000, &mut mgr);
//! assert!(gpu.stats().ipc(qos) > 0.0);
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod fairness;
pub mod goals;
pub mod manager;
pub mod nonqos;
pub mod scheme;
pub mod spart;
pub mod static_alloc;
pub mod workset;

pub use fairness::FairnessController;
pub use goals::{GoalTranslation, QosSpec, SloTarget, TenantClass};
pub use manager::QosManager;
pub use scheme::QuotaScheme;
pub use spart::SpartController;
pub use workset::{kernel_footprint_bytes, WorkingSetTracker};
