//! Deterministic pseudo-random number generation.
//!
//! The simulator must be bit-reproducible for a given case id (the paper's
//! experiments are re-run across policies and compared case-by-case), so all
//! stochastic elements — randomized address streams, divergence draws —
//! use this small, seedable SplitMix64 generator rather than a global RNG.

/// A SplitMix64 pseudo-random generator.
///
/// Fast, tiny state, and good enough statistical quality for address-stream
/// generation. Not cryptographically secure.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator from a seed. Distinct seeds give independent streams.
    pub fn new(seed: u64) -> Self {
        SplitMix64 {
            // Avoid the all-zero fixed point producing a weak first draw.
            state: seed ^ 0x9e37_79b9_7f4a_7c15,
        }
    }

    /// Returns the next 64 random bits.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a uniformly distributed value in `0..bound`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Multiply-shift reduction; bias is negligible for simulation purposes.
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }

    /// Returns a uniform `f64` in `[0, 1)`.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

crate::impl_snap_struct!(SplitMix64 { state });

/// Derives a child seed from a parent seed and a stream label.
///
/// Used to give each warp / component an independent deterministic stream.
pub fn derive_seed(parent: u64, label: u64) -> u64 {
    let mut mix = SplitMix64::new(parent ^ label.rotate_left(17));
    mix.next_u64()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = SplitMix64::new(42);
        let mut b = SplitMix64::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SplitMix64::new(1);
        let mut b = SplitMix64::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn next_below_respects_bound() {
        let mut r = SplitMix64::new(7);
        for _ in 0..10_000 {
            assert!(r.next_below(13) < 13);
        }
    }

    #[test]
    fn next_f64_in_unit_interval() {
        let mut r = SplitMix64::new(9);
        for _ in 0..10_000 {
            let x = r.next_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_roughly_uniform() {
        let mut r = SplitMix64::new(3);
        let mut buckets = [0u32; 8];
        for _ in 0..80_000 {
            buckets[r.next_below(8) as usize] += 1;
        }
        for &b in &buckets {
            assert!((8_000..12_000).contains(&b), "bucket count {b} far from uniform");
        }
    }

    #[test]
    fn derived_seeds_are_distinct_per_label() {
        let s1 = derive_seed(99, 0);
        let s2 = derive_seed(99, 1);
        assert_ne!(s1, s2);
    }
}
