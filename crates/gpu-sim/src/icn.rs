//! The interconnect boundary between SM execution domains and the shared
//! memory system (DESIGN.md §13).
//!
//! Each SM owns one [`IcnPort`]: a typed request/response queue pair that is
//! the *only* channel through which warp memory instructions reach the
//! shared L2/DRAM hierarchy. During its cycle step an SM performs its
//! private L1 lookups locally and enqueues one [`IcnRequest`] per global
//! memory instruction (the issuing warp's scoreboard is parked on
//! [`PENDING`] meanwhile). After all SM domains have stepped, the machine
//! drains every port in stable SM-index order — request order within a port
//! is the SM's own scheduler order — so the shared queues and L2 state
//! observe exactly the sequence the old serial loop produced, no matter how
//! the SM domains were stepped. That stable-order merge is the whole
//! determinism argument: parallel stepping is bit-identical to serial
//! stepping because the cross-domain traffic is replayed in a canonical
//! order at the barrier.

use crate::types::{Addr, Cycle, KernelId};

/// Scoreboard sentinel for a warp whose memory instruction is sitting in an
/// [`IcnPort`] awaiting the drain. Never observable by scheduling decisions:
/// the drain runs in the same cycle, before anything re-examines the warp,
/// and replaces it with the real completion cycle.
pub(crate) const PENDING: Cycle = Cycle::MAX;

/// One warp global-memory instruction crossing the SM→memory boundary.
#[derive(Debug, Clone, Copy)]
pub struct IcnRequest {
    /// Kernel the issuing warp belongs to (traffic accounting key).
    pub kernel: KernelId,
    /// Warp slot on the issuing SM; routes the response back.
    pub warp_slot: u16,
    /// Coalesced line count before L1 filtering (the memory domain owns the
    /// L1-access ledger, so the count travels with the request).
    pub total_lines: u32,
    /// Start of this request's miss addresses in [`IcnPort::lines`].
    pub miss_start: u32,
    /// Number of miss addresses (lines that missed the SM's private L1).
    pub miss_len: u32,
}

/// The memory domain's answer: when the slowest transaction of the request
/// completes, i.e. when the warp's operands are ready.
#[derive(Debug, Clone, Copy)]
pub struct IcnResponse {
    /// Warp slot the completion cycle belongs to.
    pub warp_slot: u16,
    /// Completion cycle to write into the warp's scoreboard.
    pub ready_at: Cycle,
}

/// Per-SM interconnect port: requests filled during the SM's step, drained
/// into [`crate::memsys::MemSystem::serve`] at the barrier, responses applied
/// back to the warp scoreboards. All three buffers are empty outside the
/// step→drain window of a single cycle, so the port is pure transit state
/// and is excluded from snapshots.
#[derive(Debug, Default)]
pub struct IcnPort {
    /// Requests in SM-scheduler issue order.
    pub(crate) requests: Vec<IcnRequest>,
    /// Miss-address arena shared by this port's requests (avoids a Vec per
    /// request on the hot path).
    pub(crate) lines: Vec<Addr>,
    /// Filled by the drain, applied to warp scoreboards, then cleared.
    pub(crate) responses: Vec<IcnResponse>,
}

impl IcnPort {
    /// Whether the port holds no in-flight traffic (the invariant outside
    /// the step→drain window).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.requests.is_empty() && self.lines.is_empty() && self.responses.is_empty()
    }
}
